package place

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/netlist"
)

// debugChains enables router diagnostics in tests.
var debugChains = false

// routeAll configures every planned site and routes its inputs (and routed
// clock enables) through the fabric.
func (p *placer) routeAll() error {
	// Static configuration first so access points and truth tables exist
	// before any route-through reuse.
	for pi := range p.plans {
		p.configureSite(p.nodeSite[p.plans[pi].node], &p.plans[pi])
	}
	for pi := range p.plans {
		plan := &p.plans[pi]
		s := p.out.Sites[p.nodeSite[plan.node]]
		firstSlot := -1
		for in, sig := range plan.inputs {
			slot, err := p.routeTo(sig, s.R, s.C)
			if err != nil {
				return fmt.Errorf("place: routing input %d of node %d (%s): %w",
					in, plan.node, p.c.Name, err)
			}
			p.b.RouteInput(s.R, s.C, s.O, in, slot)
			if firstSlot < 0 {
				firstSlot = slot
			}
		}
		// Tie unused inputs to a stable already-routed slot so corrupted
		// truth bits cannot manufacture feedback oscillations through the
		// default own-output selection.
		if firstSlot < 0 {
			firstSlot = 12 // north neighbour: stable in a settled design
		}
		for in := len(plan.inputs); in < device.LUTInputs; in++ {
			p.b.RouteInput(s.R, s.C, s.O, in, firstSlot)
		}
		if plan.ce != netlist.Invalid {
			slot, err := p.routeTo(plan.ce, s.R, s.C)
			if err != nil {
				return fmt.Errorf("place: routing CE of node %d: %w", plan.node, err)
			}
			p.b.SetFF(s.R, s.C, s.O, plan.init, device.CERouted, slot, plan.dInv)
		}
	}
	return nil
}

// routeTo makes signal sig readable at CLB (r, c) and returns the input-mux
// slot that reads it, inserting long-line drivers or route-through LUTs as
// needed.
func (p *placer) routeTo(sig netlist.SignalID, r, c int) (int, error) {
	// 1. Direct fabric resource from any existing access point.
	for _, a := range p.access[sig] {
		if slot, ok := p.directSlot(a, r, c); ok {
			return slot, nil
		}
	}
	// 2. Long line along the source's row or column.
	for _, a := range p.access[sig] {
		if a.kind != kOut {
			continue
		}
		if a.r == r {
			for ch := range p.rowLL[r] {
				if p.rowLL[r][ch] == netlist.Invalid {
					p.rowLL[r][ch] = sig
					p.b.DriveLL(a.r, a.c, ch, a.o)
					p.access[sig] = append(p.access[sig], access{kind: kRowLL, r: r, o: ch})
					p.out.LongLinesUsed++
					return 24 + ch, nil
				}
			}
		}
		if a.c == c {
			for ch := range p.colLL[c] {
				if p.colLL[c][ch] == netlist.Invalid {
					p.colLL[c][ch] = sig
					p.b.DriveLL(a.r, a.c, device.LongLinesPerRow+ch, a.o)
					p.access[sig] = append(p.access[sig], access{kind: kColLL, c: c, o: ch})
					p.out.LongLinesUsed++
					return 28 + ch, nil
				}
			}
		}
	}
	// 3. Route-through chain.
	return p.routeBFS(sig, r, c)
}

// directSlot returns the input-mux slot at (r, c) that reads access a, if
// one exists.
func (p *placer) directSlot(a access, r, c int) (int, bool) {
	g := p.g
	switch a.kind {
	case kOut:
		switch {
		case a.r == r && a.c == c:
			return a.o, true
		case a.r == r && a.c == c-1:
			return 4 + a.o, true
		case a.r == r && a.c == c+1:
			return 8 + a.o, true
		case a.c == c && a.r == r-1:
			return 12 + a.o, true
		case a.c == c && a.r == r+1:
			return 16 + a.o, true
		case a.c == c && a.r == r-device.HexDistance:
			return 20 + a.o, true
		}
	case kPin:
		for o := 0; o < 4; o++ {
			switch a.o {
			case g.PinWest(r, o):
				if c == 0 {
					return 4 + o, true
				}
			case g.PinEast(r, o):
				if c == g.Cols-1 {
					return 8 + o, true
				}
			case g.PinNorth(c, o):
				if r == 0 {
					return 12 + o, true
				}
			case g.PinSouth(c, o):
				if r == g.Rows-1 {
					return 16 + o, true
				}
			}
		}
	case kRowLL:
		if a.r == r {
			return 24 + a.o, true
		}
	case kColLL:
		if a.c == c {
			return 28 + a.o, true
		}
	}
	return 0, false
}

// readersOf returns the CLBs that can directly read an output of CLB
// (r, c): itself, its four neighbours, and the CLB HexDistance rows south.
func (p *placer) readersOf(r, c int) [][2]int {
	g := p.g
	cand := [][2]int{
		{r, c}, {r, c + 1}, {r, c - 1}, {r + 1, c}, {r - 1, c}, {r + device.HexDistance, c},
	}
	out := cand[:0]
	for _, rc := range cand {
		if rc[0] >= 0 && rc[0] < g.Rows && rc[1] >= 0 && rc[1] < g.Cols {
			out = append(out, rc)
		}
	}
	return out
}

// edgeCLBOf returns the CLB adjacent to a pin and whether one exists.
func (p *placer) edgeCLBOf(pin int) (int, int, bool) {
	g := p.g
	for r := 0; r < g.Rows; r++ {
		for o := 0; o < 4; o++ {
			if pin == g.PinWest(r, o) {
				return r, 0, true
			}
			if pin == g.PinEast(r, o) {
				return r, g.Cols - 1, true
			}
		}
	}
	for c := 0; c < g.Cols; c++ {
		for o := 0; o < 4; o++ {
			if pin == g.PinNorth(c, o) {
				return 0, c, true
			}
			if pin == g.PinSouth(c, o) {
				return g.Rows - 1, c, true
			}
		}
	}
	return 0, 0, false
}

// routeBFS finds a shortest route-through chain delivering sig to a CLB
// that (r, c) can read, materializes the chain, and returns the final slot.
// Long paths first try to publish the signal on a long line, which costs
// one channel instead of one LUT per hop.
func (p *placer) routeBFS(sig netlist.SignalID, r, c int) (int, error) {
	return p.routeBFSDepth(sig, r, c, 0)
}

func (p *placer) routeBFSDepth(sig netlist.SignalID, r, c, depth int) (int, error) {
	g := p.g
	accs := p.access[sig]
	if len(accs) == 0 {
		return 0, fmt.Errorf("signal %d has no access points (unassigned pin or unplaced node)", sig)
	}
	const none = -1
	prev := make([]int, g.CLBs()) // previous CLB on the path
	state := make([]uint8, g.CLBs())
	// state: 0 unvisited, 1 origin (signal already an output there),
	// 2 reached (needs an RT).
	for i := range prev {
		prev[i] = none
	}
	var queue []int
	push := func(clb, from int, st uint8) {
		if state[clb] != 0 {
			return
		}
		state[clb] = st
		prev[clb] = from
		queue = append(queue, clb)
	}
	// Existing outputs first: a CLB that already carries the signal as an
	// output must win over re-tapping the pin there with a second RT.
	for _, a := range accs {
		if a.kind == kOut {
			push(a.r*g.Cols+a.c, none, 1)
		}
	}
	for _, a := range accs {
		switch a.kind {
		case kPin:
			if er, ec, ok := p.edgeCLBOf(a.o); ok && p.hasFreeSlot(er*g.Cols+ec) {
				push(er*g.Cols+ec, none, 2)
			}
		case kRowLL:
			// Any CLB along the row can tap the line and start a chain.
			for cc := 0; cc < g.Cols; cc++ {
				if p.hasHopSlot(a.r*g.Cols + cc) {
					push(a.r*g.Cols+cc, none, 2)
				}
			}
		case kColLL:
			for rr := 0; rr < g.Rows; rr++ {
				if p.hasHopSlot(rr*g.Cols + a.c) {
					push(rr*g.Cols+a.c, none, 2)
				}
			}
		}
	}
	// The goal: a CLB whose outputs (r, c) reads directly — (r, c) itself,
	// its four neighbours, and the CLB HexDistance rows north.
	goalSet := make(map[int]bool)
	addGoal := func(gr, gc int) {
		if gr >= 0 && gr < g.Rows && gc >= 0 && gc < g.Cols {
			goalSet[gr*g.Cols+gc] = true
		}
	}
	addGoal(r, c)
	addGoal(r, c-1)
	addGoal(r, c+1)
	addGoal(r-1, c)
	addGoal(r+1, c)
	addGoal(r-device.HexDistance, c)
	// The destination also reads its row and column long lines, so any CLB
	// on its row/column is a goal when a free channel remains there: the
	// chain tail drives the line.
	rowFree := false
	for ch := range p.rowLL[r] {
		if p.rowLL[r][ch] == netlist.Invalid {
			rowFree = true
		}
	}
	colFree := false
	for ch := range p.colLL[c] {
		if p.colLL[c][ch] == netlist.Invalid {
			colFree = true
		}
	}
	if rowFree {
		for cc := 0; cc < g.Cols; cc++ {
			addGoal(r, cc)
		}
	}
	if colFree {
		for rr := 0; rr < g.Rows; rr++ {
			addGoal(rr, c)
		}
	}

	runBFS := func() int {
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			if goalSet[x] {
				return x
			}
			xr, xc := x/g.Cols, x%g.Cols
			for _, rc := range p.readersOf(xr, xc) {
				y := rc[0]*g.Cols + rc[1]
				if y == x || !p.hasHopSlot(y) {
					continue
				}
				push(y, x, 2)
			}
		}
		return none
	}
	goal := runBFS()
	if goal == none {
		// Last resort: publish the signal on a free long line along any of
		// its source rows/columns, then retry — the wider frontier usually
		// unblocks congested regions.
		if depth < 4 && p.spillToLongLine(sig) {
			return p.routeBFSDepth(sig, r, c, depth+1)
		}
		visited := 0
		for _, st := range state {
			if st != 0 {
				visited++
			}
		}
		return 0, fmt.Errorf("no route for signal %d to CLB (%d,%d): fabric congested (%d CLBs reachable, %d access points, %d goals, %d RTs, %d LLs so far)", sig, r, c, visited, len(accs), len(goalSet), p.out.RouteThroughs, p.out.LongLinesUsed)
	}
	// Backtrack the path origin..goal.
	var path []int
	for x := goal; x != none; x = prev[x] {
		path = append(path, x)
	}
	// path is goal..origin; reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	// A long chain burns one LUT per hop; publishing the signal on a long
	// line is far cheaper when a channel is free. Retry once after a spill.
	if len(path) > 5 && depth < 4 && p.spillToLongLine(sig) {
		return p.routeBFSDepth(sig, r, c, depth+1)
	}
	if debugChains && len(path) > 2 {
		fmt.Printf("  chain sig%d -> (%d,%d): len %d (outOrigin=%v)\n", sig, r, c, len(path), state[path[0]] == 1)
	}
	return p.materializeChain(sig, path, state[path[0]] == 1, r, c)
}

// spillToLongLine publishes sig on one free long line reachable from a
// kOut access; reports whether any line was claimed.
func (p *placer) spillToLongLine(sig netlist.SignalID) bool {
	for _, a := range p.access[sig] {
		if a.kind != kOut {
			continue
		}
		for ch := range p.rowLL[a.r] {
			if p.rowLL[a.r][ch] == netlist.Invalid {
				p.rowLL[a.r][ch] = sig
				p.b.DriveLL(a.r, a.c, ch, a.o)
				p.access[sig] = append(p.access[sig], access{kind: kRowLL, r: a.r, o: ch})
				p.out.LongLinesUsed++
				return true
			}
		}
		for ch := range p.colLL[a.c] {
			if p.colLL[a.c][ch] == netlist.Invalid {
				p.colLL[a.c][ch] = sig
				p.b.DriveLL(a.r, a.c, device.LongLinesPerRow+ch, a.o)
				p.access[sig] = append(p.access[sig], access{kind: kColLL, c: a.c, o: ch})
				p.out.LongLinesUsed++
				return true
			}
		}
	}
	return false
}

// materializeChain inserts route-through LUTs along path (a list of CLB
// indices). outOrigin marks that the signal is already an output of the
// first CLB; otherwise the first CLB hosts an RT tapping a pin or long
// line. Returns the slot at (dstR, dstC) reading the final output.
func (p *placer) materializeChain(sig netlist.SignalID, path []int, outOrigin bool, dstR, dstC int) (int, error) {
	g := p.g
	// Current tap: starts as the origin access (output, pin, or long line).
	var cur access
	start := 0
	if outOrigin {
		found := false
		for _, a := range p.access[sig] {
			if a.kind == kOut && a.r*g.Cols+a.c == path[0] {
				cur = a
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("internal: no output access at path origin")
		}
		start = 1
	} else {
		// Find any pin/long-line access the origin CLB can tap.
		r0, c0 := path[0]/g.Cols, path[0]%g.Cols
		found := false
		for _, a := range p.access[sig] {
			if a.kind == kOut {
				continue
			}
			if _, ok := p.directSlot(a, r0, c0); ok {
				cur = a
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("internal: no tappable access at path origin")
		}
		if cur.kind == kPin && !p.pinDone[sig] {
			// The pin's reserved slot is about to materialize (only once).
			p.pinDone[sig] = true
			if er, ec, ok := p.edgeCLBOf(cur.o); ok && p.reserved[er*g.Cols+ec] > 0 {
				p.reserved[er*g.Cols+ec]--
			}
		}
	}
	for i := start; i < len(path); i++ {
		clb := path[i]
		r, c := clb/g.Cols, clb%g.Cols
		slot, ok := p.directSlot(cur, r, c)
		if !ok {
			return 0, fmt.Errorf("internal: chain hop cannot read its predecessor")
		}
		o, ok := p.allocRTSlot(clb)
		if !ok {
			return 0, fmt.Errorf("no free slot for route-through at (%d,%d)", r, c)
		}
		p.b.SetLUT(r, c, o, fpga.TruthBuf)
		for in := 0; in < device.LUTInputs; in++ {
			p.b.RouteInput(r, c, o, in, slot)
		}
		p.out.Sites = append(p.out.Sites, Site{R: r, C: c, O: o, Node: -1})
		p.out.RouteThroughs++
		p.out.LUTsUsed++
		cur = access{kind: kOut, r: r, c: c, o: o}
		p.access[sig] = append(p.access[sig], cur)
	}
	slot, ok := p.directSlot(cur, dstR, dstC)
	if !ok {
		// The chain ended on the destination's row or column: publish the
		// tail on a long line the destination reads.
		if cur.kind == kOut {
			if s2, ok2 := p.allocLLFrom(cur, sig, dstR, dstC); ok2 {
				return s2, nil
			}
		}
		return 0, fmt.Errorf("internal: destination cannot read chain tail")
	}
	return slot, nil
}

// allocLLFrom claims a free long line on (dstR, dstC)'s row or column,
// driven by output access a, and returns the slot reading it.
func (p *placer) allocLLFrom(a access, sig netlist.SignalID, dstR, dstC int) (int, bool) {
	if a.r == dstR {
		for ch := range p.rowLL[dstR] {
			if p.rowLL[dstR][ch] == netlist.Invalid {
				p.rowLL[dstR][ch] = sig
				p.b.DriveLL(a.r, a.c, ch, a.o)
				p.access[sig] = append(p.access[sig], access{kind: kRowLL, r: dstR, o: ch})
				p.out.LongLinesUsed++
				return 24 + ch, true
			}
		}
	}
	if a.c == dstC {
		for ch := range p.colLL[dstC] {
			if p.colLL[dstC][ch] == netlist.Invalid {
				p.colLL[dstC][ch] = sig
				p.b.DriveLL(a.r, a.c, device.LongLinesPerRow+ch, a.o)
				p.access[sig] = append(p.access[sig], access{kind: kColLL, c: dstC, o: ch})
				p.out.LongLinesUsed++
				return 28 + ch, true
			}
		}
	}
	return 0, false
}

// bindOutputs records the fabric nets carrying each output port.
func (p *placer) bindOutputs() error {
	for _, port := range p.c.Outputs {
		nets := make([]device.NetRef, 0, port.Width())
		for i, sig := range port.Bits {
			drv := p.driver[sig]
			if drv < 0 {
				return fmt.Errorf("place: output %q bit %d is driven directly by an input port; buffer it through a LUT", port.Name, i)
			}
			si := p.nodeSite[drv]
			if si < 0 {
				return fmt.Errorf("place: output %q bit %d driver has no site", port.Name, i)
			}
			s := p.out.Sites[si]
			nets = append(nets, device.NetRef{Kind: device.NetCLBOut, R: s.R, C: s.C, O: s.O})
		}
		p.out.OutputNets[port.Name] = nets
	}
	return nil
}
