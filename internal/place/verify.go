package place

import (
	"fmt"
	"math/rand"

	"repro/internal/fpga"
	"repro/internal/netlist"
)

// Harness drives a configured FPGA through a placed design's pin bindings.
// The SEU board model (internal/board) builds on the same bindings; this
// harness is the single-device flavour used for functional verification.
type Harness struct {
	Placed *Placed
	F      *fpga.FPGA
}

// NewHarness instantiates a device and fully configures it with the placed
// design.
func NewHarness(p *Placed) (*Harness, error) {
	f := fpga.New(p.Geom)
	if err := f.FullConfigure(p.Bitstream()); err != nil {
		return nil, err
	}
	return &Harness{Placed: p, F: f}, nil
}

// SetInput drives input port name with the low bits of v.
func (h *Harness) SetInput(name string, v uint64) error {
	pins, ok := h.Placed.InputPins[name]
	if !ok {
		return fmt.Errorf("place: no input port %q", name)
	}
	for i, pin := range pins {
		if pin < 0 {
			return fmt.Errorf("place: input %q bit %d has no pin", name, i)
		}
		h.F.SetPin(pin, v&(1<<uint(i)) != 0)
	}
	return nil
}

// Output samples output port name (LSB-first, truncated to 64 bits).
func (h *Harness) Output(name string) (uint64, error) {
	nets, ok := h.Placed.OutputNets[name]
	if !ok {
		return 0, fmt.Errorf("place: no output port %q", name)
	}
	h.F.Settle()
	var v uint64
	for i, ref := range nets {
		if i >= 64 {
			break
		}
		if h.F.NetValue(h.Placed.Geom.NetID(ref)) {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// OutputBits samples an output port at full width.
func (h *Harness) OutputBits(name string) ([]bool, error) {
	nets, ok := h.Placed.OutputNets[name]
	if !ok {
		return nil, fmt.Errorf("place: no output port %q", name)
	}
	h.F.Settle()
	out := make([]bool, len(nets))
	for i, ref := range nets {
		out[i] = h.F.NetValue(h.Placed.Geom.NetID(ref))
	}
	return out, nil
}

// Step advances the device one clock.
func (h *Harness) Step() { h.F.Step() }

// Verify runs the placed design and the logical netlist simulator in
// lock-step under seeded random stimulus and reports the first divergence.
// This is the placement flow's acceptance test: the bitstream must be
// functionally identical to the netlist, cycle for cycle.
func Verify(p *Placed, cycles int, seed int64) error {
	h, err := NewHarness(p)
	if err != nil {
		return err
	}
	ref, err := netlist.NewSimulator(p.Circuit)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	compare := func(cycle int) error {
		for _, port := range p.Circuit.Outputs {
			got, err := h.OutputBits(port.Name)
			if err != nil {
				return err
			}
			want, err := ref.OutputBits(port.Name)
			if err != nil {
				return err
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("place: verify %q: cycle %d output %q bit %d: fpga=%v netlist=%v",
						p.Circuit.Name, cycle, port.Name, i, got[i], want[i])
				}
			}
		}
		return nil
	}
	if err := compare(0); err != nil {
		return err
	}
	for cyc := 1; cyc <= cycles; cyc++ {
		for _, port := range p.Circuit.Inputs {
			bits := make([]bool, port.Width())
			for i := range bits {
				bits[i] = rng.Intn(2) == 1
			}
			pins := p.InputPins[port.Name]
			for i, bv := range bits {
				if pins[i] >= 0 {
					h.F.SetPin(pins[i], bv)
				}
			}
			if err := ref.SetInputBits(port.Name, bits); err != nil {
				return err
			}
		}
		h.Step()
		ref.Step()
		if err := compare(cyc); err != nil {
			return err
		}
	}
	return nil
}
