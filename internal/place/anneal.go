package place

import (
	"math"
	"math/rand"

	"repro/internal/device"
	"repro/internal/netlist"
)

// Simulated-annealing placement refinement. The constructive block layout
// gives a reasonable start; annealing then minimizes routed wirelength so
// most connections resolve to direct fabric resources instead of
// route-through chains. The cost model mirrors the fabric: neighbour and
// hex-south connections are free, vertical distance southward is discounted
// by the hex wires, and everything else pays roughly one route-through per
// hop.

// annealEdge is one producer->consumer connection with the producer
// identified either by plan index or by a fixed pin location.
type annealEdge struct {
	srcPlan int // -1 when the source is a pin
	srcR    int // pin edge-CLB location when srcPlan < 0
	srcC    int
	dstPlan int
}

// edgeCost estimates routing cost from (sr,sc) to (dr,dc).
func edgeCost(sr, sc, dr, dc int) float64 {
	if sr == dr && sc == dc {
		return 0
	}
	vr := dr - sr
	hc := dc - sc
	if hc == 0 && vr == device.HexDistance {
		return 0 // hex wire
	}
	if (abs(vr) == 1 && hc == 0) || (vr == 0 && abs(hc) == 1) {
		return 0 // direct neighbour
	}
	// Southward vertical travel rides hex wires; northward pays per row.
	var vcost float64
	if vr > 0 {
		vcost = float64(vr/device.HexDistance + vr%device.HexDistance)
	} else {
		vcost = float64(-vr)
	}
	return vcost + float64(abs(hc))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// annealPlacement refines clbOf (the CLB index per plan) in place.
func (p *placer) annealPlacement(plans []sitePlan, clbOf []int, rng *rand.Rand) {
	g := p.g
	if len(plans) < 2 {
		return
	}
	// Build edges.
	planOfNode := make([]int, len(p.c.Nodes))
	for i := range planOfNode {
		planOfNode[i] = -1
	}
	for pi := range plans {
		planOfNode[plans[pi].node] = pi
	}
	var edges []annealEdge
	addEdge := func(sig netlist.SignalID, dstPlan int) {
		if drv := p.driver[sig]; drv >= 0 {
			if sp := planOfNode[drv]; sp >= 0 && sp != dstPlan {
				edges = append(edges, annealEdge{srcPlan: sp, dstPlan: dstPlan})
			}
			return
		}
		if pin, ok := p.sigPin[sig]; ok {
			if er, ec, ok2 := p.edgeCLBOf(pin); ok2 {
				edges = append(edges, annealEdge{srcPlan: -1, srcR: er, srcC: ec, dstPlan: dstPlan})
			}
		}
	}
	for pi := range plans {
		for _, sig := range plans[pi].inputs {
			addEdge(sig, pi)
		}
		if plans[pi].ce != netlist.Invalid {
			addEdge(plans[pi].ce, pi)
		}
	}
	// Per-plan edge index for incremental cost evaluation.
	byPlan := make([][]int, len(plans))
	for ei, e := range edges {
		byPlan[e.dstPlan] = append(byPlan[e.dstPlan], ei)
		if e.srcPlan >= 0 {
			byPlan[e.srcPlan] = append(byPlan[e.srcPlan], ei)
		}
	}
	cost := func(ei int) float64 {
		e := edges[ei]
		sr, sc := e.srcR, e.srcC
		if e.srcPlan >= 0 {
			clb := clbOf[e.srcPlan]
			sr, sc = clb/g.Cols, clb%g.Cols
		}
		dclb := clbOf[e.dstPlan]
		return edgeCost(sr, sc, dclb/g.Cols, dclb%g.Cols)
	}
	planCost := func(pi int) float64 {
		t := 0.0
		for _, ei := range byPlan[pi] {
			t += cost(ei)
		}
		return t
	}

	// Occupancy per CLB (design sites only, capped at MaxSitesPerCLB).
	occ := make([]int8, g.CLBs())
	for _, clb := range clbOf {
		occ[clb]++
	}
	intRows, intCols := g.Rows-2, g.Cols-2
	randInterior := func() int {
		r := rng.Intn(intRows) + 1
		c := rng.Intn(intCols) + 1
		return r*g.Cols + c
	}

	n := len(plans)
	iters := 220 * n
	temp := 2.5
	cool := math.Pow(0.02/temp, 1.0/float64(iters))
	for it := 0; it < iters; it++ {
		pi := rng.Intn(n)
		old := clbOf[pi]
		target := randInterior()
		if target == old {
			temp *= cool
			continue
		}
		var swapWith = -1
		if occ[target] >= int8(p.opt.MaxSitesPerCLB) {
			// Swap with a random plan living there.
			cands := make([]int, 0, 4)
			for pj := range plans {
				if clbOf[pj] == target {
					cands = append(cands, pj)
				}
			}
			if len(cands) == 0 {
				temp *= cool
				continue
			}
			swapWith = cands[rng.Intn(len(cands))]
		}
		var before, after float64
		if swapWith >= 0 {
			before = planCost(pi) + planCost(swapWith)
			clbOf[pi], clbOf[swapWith] = target, old
			after = planCost(pi) + planCost(swapWith)
			if after > before && rng.Float64() >= math.Exp((before-after)/temp) {
				clbOf[pi], clbOf[swapWith] = old, target // reject
			}
		} else {
			before = planCost(pi)
			clbOf[pi] = target
			after = planCost(pi)
			if after > before && rng.Float64() >= math.Exp((before-after)/temp) {
				clbOf[pi] = old // reject
			} else {
				occ[old]--
				occ[target]++
			}
		}
		temp *= cool
	}
}
