// Package place maps a technology-mapped netlist onto the device model:
// site assignment (LUT/FF pairs merged where possible), input-pin
// assignment, and routing through the fabric's neighbour wires, hex wires,
// long lines, and — where no direct resource exists — automatically
// inserted route-through LUTs. The result is a configuration bitstream plus
// the pin/net bindings the test harness needs to drive and observe the
// design.
//
// Routing fidelity is what makes the SEU study meaningful: every connection
// the design uses is expressed in configuration bits (input-mux selects,
// long-line drivers, LUT truth tables), so corrupting those bits breaks the
// design the way a real configuration upset would.
package place

import (
	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/netlist"
)

// Options tune the placement flow.
type Options struct {
	// MaxSitesPerCLB bounds how many of a CLB's four LUT/FF sites the
	// placer fills with design logic, keeping the rest free for
	// route-through insertion. Default 2.
	MaxSitesPerCLB int
}

// DefaultOptions returns the standard knobs.
func DefaultOptions() Options { return Options{MaxSitesPerCLB: 2} }

// Site is one placed LUT/FF pair.
type Site struct {
	R, C, O    int
	Registered bool // output taken from the FF
	Node       int  // driving netlist node index, or -1 for a route-through
}

// Placed is the result of placement and routing.
type Placed struct {
	Geom    device.Geometry
	Circuit *netlist.Circuit
	// Memory is the complete configuration produced by the flow.
	Memory *bitstream.Memory
	// InputPins maps each input port to its assigned device pins (bit
	// order matches the port).
	InputPins map[string][]int
	// OutputNets maps each output port to the CLB outputs carrying it.
	OutputNets map[string][]device.NetRef
	// Sites lists every placed site including route-throughs.
	Sites []Site

	// Statistics.
	LUTsUsed      int
	FFsUsed       int
	RouteThroughs int
	LongLinesUsed int
}

// SlicesUsed returns the number of slices (2 LUT/FF pairs each) occupied by
// design logic — the unit the paper's Table I reports. Route-through LUTs
// are excluded: they are this fabric's analogue of Virtex routing PIPs,
// which consume configuration bits but no logic slices.
func (p *Placed) SlicesUsed() int {
	type sl struct{ r, c, s int }
	seen := make(map[sl]bool)
	for _, s := range p.Sites {
		if s.Node < 0 {
			continue
		}
		seen[sl{s.R, s.C, s.O / device.LUTsPerSlice}] = true
	}
	return len(seen)
}

// SitesUsed returns every occupied LUT/FF site including route-throughs.
func (p *Placed) SitesUsed() int { return len(p.Sites) }

// Utilization returns used slices / total slices.
func (p *Placed) Utilization() float64 {
	return float64(p.SlicesUsed()) / float64(p.Geom.Slices())
}

// Bitstream assembles the full configuration bitstream.
func (p *Placed) Bitstream() *bitstream.Bitstream { return bitstream.Full(p.Memory) }

// Place maps circuit c onto geometry g. It first tries the default
// density; on routing congestion it retries at half density, which doubles
// the spare routing slots per CLB.
func Place(c *netlist.Circuit, g device.Geometry) (*Placed, error) {
	p, err := PlaceOpt(c, g, Options{MaxSitesPerCLB: 2})
	if err == nil {
		return p, nil
	}
	if p2, err2 := PlaceOpt(c, g, Options{MaxSitesPerCLB: 1}); err2 == nil {
		return p2, nil
	}
	return nil, err
}

// PlaceOpt maps circuit c onto geometry g.
func PlaceOpt(c *netlist.Circuit, g device.Geometry, opt Options) (*Placed, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxSitesPerCLB <= 0 || opt.MaxSitesPerCLB > 4 {
		opt.MaxSitesPerCLB = 2
	}
	pl := &placer{
		g:        g,
		c:        c,
		opt:      opt,
		b:        fpga.NewConfigBuilder(g),
		driver:   c.DriverOf(),
		used:     make([]uint8, g.CLBs()),
		reserved: make([]int8, g.CLBs()),
		access:   make(map[netlist.SignalID][]access),
		rowLL:    makeLLTable(g.Rows, device.LongLinesPerRow),
		colLL:    makeLLTable(g.Cols, device.LongLinesPerCol),
		sigPin:   make(map[netlist.SignalID]int),
		pinDone:  make(map[netlist.SignalID]bool),
		out: &Placed{
			Geom:       g,
			Circuit:    c,
			InputPins:  make(map[string][]int),
			OutputNets: make(map[string][]device.NetRef),
		},
	}
	if err := pl.run(); err != nil {
		return nil, err
	}
	pl.out.Memory = pl.b.Memory()
	return pl.out, nil
}

func makeLLTable(n, ch int) [][]netlist.SignalID {
	t := make([][]netlist.SignalID, n)
	for i := range t {
		t[i] = make([]netlist.SignalID, ch)
		for j := range t[i] {
			t[i][j] = netlist.Invalid
		}
	}
	return t
}

// access describes one fabric location where a signal can be tapped.
type access struct {
	kind accessKind
	r, c int // CLB for kOut
	o    int // CLB output for kOut; channel for long lines; pin index for kPin
}

type accessKind uint8

const (
	kOut accessKind = iota
	kPin
	kRowLL
	kColLL
)

type placer struct {
	g      device.Geometry
	c      *netlist.Circuit
	opt    Options
	b      *fpga.ConfigBuilder
	driver []int
	used   []uint8 // per-CLB bitmask of occupied sites
	// reserved counts edge-CLB slots promised to assigned pins that have
	// not yet materialized their route-through; chain hops may only use
	// slots beyond this reservation.
	reserved []int8
	access   map[netlist.SignalID][]access
	// Long-line signal assignment (one signal per row/col channel).
	rowLL  [][]netlist.SignalID
	colLL  [][]netlist.SignalID
	sigPin map[netlist.SignalID]int
	// nodeSite maps node index -> placed site index in out.Sites.
	nodeSite []int
	plans    []sitePlan
	pinDone  map[netlist.SignalID]bool
	out      *Placed
}

func (p *placer) run() error {
	p.assignPins()
	if err := p.placeSites(); err != nil {
		return err
	}
	if err := p.routeAll(); err != nil {
		return err
	}
	return p.bindOutputs()
}

// assignPins binds input-port bits to device pins, west edge first, then
// east, north, south.
func (p *placer) assignPins() {
	g := p.g
	var pool []int
	for r := 0; r < g.Rows; r++ {
		for o := 0; o < 4; o++ {
			pool = append(pool, g.PinWest(r, o))
		}
	}
	for r := 0; r < g.Rows; r++ {
		for o := 0; o < 4; o++ {
			pool = append(pool, g.PinEast(r, o))
		}
	}
	// North/south pools skip the corner columns: corner CLBs already serve
	// four west/east pins and have no slots left for more route-throughs.
	for c := 1; c < g.Cols-1; c++ {
		for o := 0; o < 4; o++ {
			pool = append(pool, g.PinNorth(c, o))
		}
	}
	for c := 1; c < g.Cols-1; c++ {
		for o := 0; o < 4; o++ {
			pool = append(pool, g.PinSouth(c, o))
		}
	}
	// Reserve edge slots only for pins whose signals the netlist actually
	// consumes; unconsumed inputs never need a route-through.
	consumed := make([]bool, p.c.NumSignals)
	for _, n := range p.c.Nodes {
		for _, s := range n.In {
			consumed[s] = true
		}
	}
	next := 0
	for _, port := range p.c.Inputs {
		pins := make([]int, 0, port.Width())
		for _, sig := range port.Bits {
			if next >= len(pool) {
				// Out of pins: leave unassigned; routeAll will fail with a
				// descriptive error if the signal is actually consumed.
				pins = append(pins, -1)
				continue
			}
			pin := pool[next]
			next++
			pins = append(pins, pin)
			p.sigPin[sig] = pin
			p.access[sig] = append(p.access[sig], access{kind: kPin, o: pin})
			if er, ec, ok := p.edgeCLBOf(pin); ok && consumed[sig] {
				p.reserved[er*g.Cols+ec]++
			}
		}
		p.out.InputPins[port.Name] = pins
	}
}
