package place

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func mustPlace(t *testing.T, c *netlist.Circuit, g device.Geometry) *Placed {
	t.Helper()
	p, err := Place(c, g)
	if err != nil {
		t.Fatalf("place %q: %v", c.Name, err)
	}
	return p
}

func TestPlaceCombinationalGates(t *testing.T) {
	b := netlist.NewBuilder("gates")
	in := b.Input("in", 4)
	x := b.Xor(in[0], in[1])
	y := b.And(in[2], in[3])
	b.Output("o", []netlist.SignalID{b.Or(x, y)})
	c := b.MustBuild()
	p := mustPlace(t, c, device.Tiny())
	if err := Verify(p, 50, 1); err != nil {
		t.Fatal(err)
	}
	if p.LUTsUsed < 3 {
		t.Errorf("LUTsUsed = %d, want >= 3", p.LUTsUsed)
	}
}

func TestPlaceRegisteredPipeline(t *testing.T) {
	b := netlist.NewBuilder("pipe")
	in := b.Input("d", 8)
	s1 := synth.Register(b, in)
	s2 := synth.Register(b, s1)
	b.Output("q", s2)
	p := mustPlace(t, b.MustBuild(), device.Tiny())
	if err := Verify(p, 60, 2); err != nil {
		t.Fatal(err)
	}
	if p.FFsUsed != 16 {
		t.Errorf("FFsUsed = %d, want 16", p.FFsUsed)
	}
	// Registers merge with their driving buffer LUTs into single sites.
	if p.SlicesUsed() == 0 || p.Utilization() <= 0 {
		t.Error("slice statistics empty")
	}
}

func TestPlaceCounterFeedback(t *testing.T) {
	b := netlist.NewBuilder("counter")
	q := synth.Counter(b, 8)
	b.Output("q", q)
	p := mustPlace(t, b.MustBuild(), device.Tiny())
	if err := Verify(p, 300, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAdderRandom(t *testing.T) {
	b := netlist.NewBuilder("adder")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	sum, cout := synth.Add(b, x, y, netlist.Invalid)
	b.Output("s", sum)
	b.Output("c", []netlist.SignalID{cout})
	p := mustPlace(t, b.MustBuild(), device.Small())
	if err := Verify(p, 100, 4); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceMultiplier(t *testing.T) {
	b := netlist.NewBuilder("mult")
	x := b.Input("x", 6)
	y := b.Input("y", 6)
	b.Output("p", synth.Multiply(b, x, y))
	p := mustPlace(t, b.MustBuild(), device.Small())
	if err := Verify(p, 100, 5); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceWithRoutedCE(t *testing.T) {
	b := netlist.NewBuilder("ce")
	d := b.Input("d", 4)
	ce := b.Input("ce", 1)
	ceBuf := b.Buf(ce[0])
	b.Output("q", synth.RegisterCE(b, d, ceBuf))
	p := mustPlace(t, b.MustBuild(), device.Tiny())
	if err := Verify(p, 80, 6); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceLongDistanceRouting(t *testing.T) {
	// A chain whose producer and consumer sit far apart forces the router
	// to use long lines or route-throughs; MaxSitesPerCLB=1 spreads sites.
	b := netlist.NewBuilder("spread")
	in := b.Input("in", 1)
	cur := b.Buf(in[0])
	for i := 0; i < 40; i++ {
		cur = b.Not(cur)
	}
	b.Output("o", []netlist.SignalID{cur})
	p, err := PlaceOpt(b.MustBuild(), device.Small(), Options{MaxSitesPerCLB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, 20, 7); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceFanoutSharing(t *testing.T) {
	// One producer with many consumers across the array: route-throughs
	// and long lines must be shared, not duplicated per consumer.
	b := netlist.NewBuilder("fanout")
	in := b.Input("in", 1)
	src := b.Buf(in[0])
	var outs []netlist.SignalID
	for i := 0; i < 30; i++ {
		outs = append(outs, b.Not(src))
	}
	b.Output("o", outs)
	p := mustPlace(t, b.MustBuild(), device.Small())
	if err := Verify(p, 20, 8); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceConstants(t *testing.T) {
	b := netlist.NewBuilder("consts")
	k := synth.ConstBus(b, 4, 0b1010)
	b.Output("k", k)
	p := mustPlace(t, b.MustBuild(), device.Tiny())
	if err := Verify(p, 5, 9); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceRejectsOversizedDesign(t *testing.T) {
	b := netlist.NewBuilder("huge")
	in := b.Input("in", 1)
	cur := in[0]
	g := device.Tiny()
	for i := 0; i < g.CLBs()*4; i++ {
		cur = b.Not(cur)
	}
	b.Output("o", []netlist.SignalID{cur})
	if _, err := Place(b.MustBuild(), g); err == nil {
		t.Fatal("oversized design accepted")
	} else if !strings.Contains(err.Error(), "sites") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPlaceRejectsPassThroughOutput(t *testing.T) {
	b := netlist.NewBuilder("pass")
	in := b.Input("in", 1)
	b.Output("o", in)
	if _, err := Place(b.MustBuild(), device.Tiny()); err == nil {
		t.Fatal("pass-through output accepted")
	}
}

func TestPlaceStatsAndSites(t *testing.T) {
	b := netlist.NewBuilder("stats")
	in := b.Input("in", 2)
	q := b.FF(b.Xor(in[0], in[1]), false)
	b.Output("q", []netlist.SignalID{q})
	p := mustPlace(t, b.MustBuild(), device.Tiny())
	// XOR merges into the FF: one site, registered.
	var reg int
	for _, s := range p.Sites {
		if s.Registered {
			reg++
		}
	}
	if reg != 1 {
		t.Errorf("registered sites = %d, want 1", reg)
	}
	if p.LUTsUsed-p.RouteThroughs != 1 || p.FFsUsed != 1 {
		t.Errorf("design LUTs=%d FFs=%d, want 1/1 (merged)", p.LUTsUsed-p.RouteThroughs, p.FFsUsed)
	}
}

func TestExpandTruth(t *testing.T) {
	// NOT over 1 input expands to 0x5555.
	if got := expandTruth(0x1, 1); got != 0x5555 {
		t.Errorf("expandTruth(NOT,1) = %#x", got)
	}
	// XOR2 expands to 0x6666.
	if got := expandTruth(0x6, 2); got != 0x6666 {
		t.Errorf("expandTruth(XOR2,2) = %#x", got)
	}
	// Full-width tables pass through.
	if got := expandTruth(0xBEEF, 4); got != 0xBEEF {
		t.Errorf("expandTruth(id,4) = %#x", got)
	}
}

func TestPinAssignmentExhaustion(t *testing.T) {
	g := device.Tiny()
	b := netlist.NewBuilder("pins")
	in := b.Input("wide", g.Pins()+8)
	// Consume only bit 0 so the unassigned tail is harmless.
	b.Output("o", []netlist.SignalID{b.Buf(in[0])})
	p := mustPlace(t, b.MustBuild(), g)
	pins := p.InputPins["wide"]
	if pins[0] < 0 {
		t.Fatal("first pin unassigned")
	}
	if pins[len(pins)-1] != -1 {
		t.Fatal("overflow pins should be -1")
	}
	// Consuming an unassigned pin must fail loudly.
	b2 := netlist.NewBuilder("pins2")
	in2 := b2.Input("wide", g.Pins()+8)
	b2.Output("o", []netlist.SignalID{b2.Buf(in2[len(in2)-1])})
	if _, err := Place(b2.MustBuild(), g); err == nil {
		t.Fatal("consuming an unassigned pin should fail")
	}
}

func TestSelfCheckingDesignFlagsConfigUpset(t *testing.T) {
	// The §IV-A readback-free alternative (ref [15]): the design carries
	// its own duplicate-and-compare checker; a configuration upset in
	// either copy raises the sticky ERR output, requesting a full
	// reconfiguration — no bitstream readback involved.
	b := netlist.NewBuilder("payload")
	in := b.Input("in", 3)
	q1 := b.FF(b.Xor(in[0], in[1]), false)
	q2 := b.FF(b.Maj3(in[0], in[1], in[2]), false)
	b.Output("o", []netlist.SignalID{q1, q2})
	sc, err := netlist.SelfChecking(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	p := mustPlace(t, sc, device.Tiny())
	h, err := NewHarness(p)
	if err != nil {
		t.Fatal(err)
	}
	step := func(i int) uint64 {
		h.SetInput("in", uint64(i%8))
		h.Step()
		e, _ := h.Output("ERR")
		return e
	}
	for i := 0; i < 30; i++ {
		if step(i) != 0 {
			t.Fatalf("false alarm at cycle %d", i)
		}
	}
	// Corrupt one copy: flip a registered design site's LUT truth bit 0
	// (buffer/logic tables always address index 0 or an occupied index
	// across the stimulus sweep).
	corrupted := false
	for _, s := range p.Sites {
		if s.Registered {
			for i := 0; i < device.LUTBits; i++ {
				h.F.InjectBit(p.Geom.LUTBitAddr(s.R, s.C, s.O, i))
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no registered site to corrupt")
	}
	tripped := false
	for i := 0; i < 40; i++ {
		if step(i) == 1 {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("embedded checker missed the configuration upset")
	}
	// Sticky: ERR stays high even as inputs keep changing.
	for i := 0; i < 20; i++ {
		if step(i) != 1 {
			t.Fatal("ERR flag is not sticky")
		}
	}
}
