package place

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/netlist"
)

// expandTruth widens a truth table defined over k inputs to the full
// 16-entry table by ignoring the unconnected inputs.
func expandTruth(truth uint16, k int) uint16 {
	mask := (1 << uint(k)) - 1
	var out uint16
	for idx := 0; idx < 16; idx++ {
		if truth&(1<<uint(idx&mask)) != 0 {
			out |= 1 << uint(idx)
		}
	}
	return out
}

// sitePlan captures what one placed site must implement before a physical
// location is known.
type sitePlan struct {
	node       int // netlist node index that owns the site
	truth      uint16
	inputs     []netlist.SignalID
	registered bool
	init       bool
	dInv       bool
	ce         netlist.SignalID // Invalid when the FF has no routed CE
}

// planSites decides the site list: LUT nodes merge into the FF they feed
// when they have no other consumer; all other FFs get a buffer LUT.
func (p *placer) planSites() ([]sitePlan, error) {
	fanout := make([]int, p.c.NumSignals)
	for _, n := range p.c.Nodes {
		for _, s := range n.In {
			fanout[s]++
		}
	}
	for _, port := range p.c.Outputs {
		for _, s := range port.Bits {
			fanout[s]++
		}
	}
	merged := make([]bool, len(p.c.Nodes))
	var plans []sitePlan
	for i, n := range p.c.Nodes {
		switch n.Kind {
		case netlist.NodeFF:
			plan := sitePlan{node: i, registered: true, init: n.Init, ce: netlist.Invalid}
			if n.HasCE {
				plan.ce = n.In[1]
			}
			d := n.In[0]
			if drv := p.driver[d]; drv >= 0 && p.c.Nodes[drv].Kind == netlist.NodeLUT && fanout[d] == 1 {
				lut := p.c.Nodes[drv]
				plan.truth = expandTruth(lut.Truth, len(lut.In))
				plan.inputs = lut.In
				merged[drv] = true
			} else {
				plan.truth = fpga.TruthBuf
				plan.inputs = []netlist.SignalID{d}
			}
			plans = append(plans, plan)
		case netlist.NodeConst:
			truth := fpga.TruthZero
			if n.Init {
				truth = fpga.TruthOne
			}
			plans = append(plans, sitePlan{node: i, truth: truth, ce: netlist.Invalid})
		}
	}
	for i, n := range p.c.Nodes {
		if n.Kind != netlist.NodeLUT || merged[i] {
			continue
		}
		plans = append(plans, sitePlan{
			node:   i,
			truth:  expandTruth(n.Truth, len(n.In)),
			inputs: n.In,
			ce:     netlist.Invalid,
		})
	}
	// Place in node-creation order: builders emit nodes in dataflow order,
	// so this keeps producers physically near their consumers.
	sort.Slice(plans, func(a, b int) bool { return plans[a].node < plans[b].node })
	return plans, nil
}

// placeSites assigns physical locations in a snake scan, filling at most
// MaxSitesPerCLB sites per CLB so route-throughs always find room.
func (p *placer) placeSites() error {
	plans, err := p.planSites()
	if err != nil {
		return err
	}
	p.plans = plans
	p.nodeSite = make([]int, len(p.c.Nodes))
	for i := range p.nodeSite {
		p.nodeSite[i] = -1
	}
	g := p.g
	// Design sites occupy only interior CLBs: the edge ring stays free so
	// every device pin's single adjacent CLB can always host the
	// route-through that brings the pin into the fabric.
	intRows, intCols := g.Rows-2, g.Cols-2
	capTotal := intRows * intCols * p.opt.MaxSitesPerCLB
	if len(plans) > capTotal {
		return fmt.Errorf("place: design %q needs %d sites but geometry offers %d (%s)",
			p.c.Name, len(plans), capTotal, g)
	}
	// Lay sites out column-major inside a roughly square block: square
	// blocks keep both dimensions of the dataflow local. A simulated
	// annealing pass then refines the layout for wirelength (see anneal.go)
	// so most connections resolve to direct fabric resources.
	needCLBs := (len(plans) + p.opt.MaxSitesPerCLB - 1) / p.opt.MaxSitesPerCLB
	blockH := intRows
	if side := intSqrt(needCLBs); side < blockH {
		blockH = side
	}
	if blockH < 1 {
		blockH = 1
	}
	clbOf := make([]int, len(plans))
	for pi := range plans {
		clb := pi / p.opt.MaxSitesPerCLB
		c := clb / blockH
		r := clb % blockH
		band := c / intCols
		c = c % intCols
		r += band * blockH
		if r >= intRows {
			r = r % intRows
		}
		clbOf[pi] = (r+1)*g.Cols + (c + 1)
	}
	p.annealPlacement(plans, clbOf, rand.New(rand.NewSource(1)))
	// Commit: assign slot indices within each CLB in plan order.
	slotNext := make([]uint8, g.CLBs())
	for pi := range plans {
		clb := clbOf[pi]
		r, c := clb/g.Cols, clb%g.Cols
		o := int(slotNext[clb])
		slotNext[clb]++
		p.used[clb] |= 1 << uint(o)
		plan := &plans[pi]
		siteIdx := len(p.out.Sites)
		p.out.Sites = append(p.out.Sites, Site{R: r, C: c, O: o, Registered: plan.registered, Node: plan.node})
		p.nodeSite[plan.node] = siteIdx
		sig := p.c.Nodes[plan.node].Out
		p.access[sig] = append(p.access[sig], access{kind: kOut, r: r, c: c, o: o})
		p.out.LUTsUsed++
		if plan.registered {
			p.out.FFsUsed++
		}
	}
	return nil
}

func lowSlotsMask(n int) uint8 { return uint8(1<<uint(n)) - 1 }

// intSqrt returns ceil(sqrt(n)) for small n.
func intSqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// configureSite writes a planned site's static configuration (truth table,
// FF mode, output mux); input routing happens in routeAll.
func (p *placer) configureSite(siteIdx int, plan *sitePlan) {
	s := p.out.Sites[siteIdx]
	p.b.SetLUT(s.R, s.C, s.O, plan.truth)
	p.b.SetOutMux(s.R, s.C, s.O, plan.registered)
	if plan.registered && plan.ce == netlist.Invalid {
		// Clock always enabled. The default fabric implementation is the
		// half-latch constant (CEHalfLatch = 0), exactly what the Xilinx
		// tools emit and what RadDRC later rewrites.
		p.b.SetFF(s.R, s.C, s.O, plan.init, device.CEHalfLatch, 0, plan.dInv)
	} else if plan.registered {
		// CE select is patched in during routing.
		p.b.SetFF(s.R, s.C, s.O, plan.init, device.CERouted, 0, plan.dInv)
	}
}

// allocRTSlot claims a free LUT site in clbIdx for a route-through.
func (p *placer) allocRTSlot(clbIdx int) (int, bool) {
	m := p.used[clbIdx]
	for o := 0; o < 4; o++ {
		if m&(1<<uint(o)) == 0 {
			p.used[clbIdx] |= 1 << uint(o)
			return o, true
		}
	}
	return 0, false
}

// hasFreeSlot reports whether a CLB has any unoccupied site.
func (p *placer) hasFreeSlot(clbIdx int) bool {
	return bits.OnesCount8(p.used[clbIdx]) < 4
}

// hasHopSlot reports whether a CLB can host a chain hop route-through
// without eating into slots reserved for its adjacent pins.
func (p *placer) hasHopSlot(clbIdx int) bool {
	return bits.OnesCount8(p.used[clbIdx])+int(p.reserved[clbIdx]) < 4
}
