package designs

import (
	"testing"

	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/place"
)

func TestCatalogBuildsAndValidates(t *testing.T) {
	for _, spec := range Catalog() {
		c := spec.Build()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if c.Name != spec.Name {
			t.Errorf("%s: circuit named %q", spec.Name, c.Name)
		}
	}
}

func TestCatalogPlacesAndVerifiesOnSmall(t *testing.T) {
	g := device.Small()
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p, err := place.Place(spec.Build(), g)
			if err != nil {
				t.Fatalf("place: %v", err)
			}
			if err := place.Verify(p, 40, 42); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLFSRFamilyAreaProgression(t *testing.T) {
	g := device.Small()
	var prev int
	for _, name := range []string{"LFSR 18", "LFSR 36", "LFSR 54", "LFSR 72"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := place.Place(spec.Build(), g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := p.SlicesUsed()
		if s <= prev {
			t.Errorf("%s: slices %d not larger than previous %d", name, s, prev)
		}
		prev = s
	}
}

func TestLFSRSequenceIsNonTrivial(t *testing.T) {
	b := netlist.NewBuilder("lfsr")
	q := LFSR(b, 10, 1)
	b.Output("O", q)
	sim, err := netlist.NewSimulator(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		v, _ := sim.Output("O")
		if v == 0 {
			t.Fatal("LFSR reached the all-zero lock-up state")
		}
		seen[v] = true
		sim.Step()
	}
	if len(seen) < 50 {
		t.Errorf("LFSR visited only %d states in 200 cycles", len(seen))
	}
}

func TestMultComputesProducts(t *testing.T) {
	c := Mult("m", 4)
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInput("A", 13)
	sim.SetInput("B", 11)
	sim.StepN(2) // input register + output register
	if v, _ := sim.Output("O"); v != 143 {
		t.Errorf("13*11 = %d, want 143", v)
	}
}

func TestVMultLanesAreIndependent(t *testing.T) {
	c := VMult("v", 2, 3)
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 0: 5*7=35; lane 1: 3*2=6. Lanes are systolically skewed, so run
	// enough cycles for the deepest lane to fill with the constant inputs.
	sim.SetInput("A", 5|3<<3)
	sim.SetInput("B", 7|2<<3)
	sim.StepN(10)
	v, _ := sim.Output("O")
	if lane0 := v & 63; lane0 != 35 {
		t.Errorf("lane0 = %d, want 35", lane0)
	}
	if lane1 := (v >> 6) & 63; lane1 != 6 {
		t.Errorf("lane1 = %d, want 6", lane1)
	}
}

func TestMultAddComputes(t *testing.T) {
	c := MultAdd("ma", 6)
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	const a, b = 45, 37
	sim.SetInput("A", a)
	sim.SetInput("B", b)
	sim.StepN(16) // fill the skewed accumulation pipeline
	// al*bl + al*bh + ah*bl + ah*bh for 3-bit halves.
	al, ah := uint64(a&7), uint64(a>>3)
	bl, bh := uint64(b&7), uint64(b>>3)
	want := al*bl + al*bh + ah*bl + ah*bh
	if v, _ := sim.Output("O"); v != want {
		t.Errorf("multiply-add tree = %d, want %d", v, want)
	}
}

func TestCounterAdderCounts(t *testing.T) {
	c := CounterAdder("ca", 6)
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInput("A", 5)
	// After k cycles the output register holds counter(k-1)+5 (one cycle of
	// register latency on both A and the sum).
	sim.StepN(4)
	if v, _ := sim.Output("O"); v != 3+5 {
		t.Errorf("counter+5 after 4 cycles = %d, want 8", v)
	}
}

func TestFilterPreprocImpulseResponse(t *testing.T) {
	c := FilterPreproc("fir", 4, 5)
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	// Drive an impulse and observe coefficients 1,2,3,1,2 marching out.
	sim.SetInput("A", 1)
	sim.Step()
	sim.SetInput("A", 0)
	var got []uint64
	for i := 0; i < 8; i++ {
		v, _ := sim.Output("O")
		got = append(got, v)
		sim.Step()
	}
	want := []uint64{0, 1, 2, 3, 1, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("impulse response = %v, want %v", got, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("GHOST 99"); err == nil {
		t.Error("ByName accepted a ghost design")
	}
}

func TestClassesAssigned(t *testing.T) {
	for _, s := range Catalog() {
		switch s.Class {
		case "feedback", "feedforward", "mixed":
		default:
			t.Errorf("%s: unknown class %q", s.Name, s.Class)
		}
		if len(s.Tables) == 0 {
			t.Errorf("%s: no table assignment", s.Name)
		}
	}
}
