package designs

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/synth"
)

// Random returns a seeded randomly generated design Spec. The generator
// emits valid clocked circuits mixing the structures the hand-written
// catalog exercises — random-truth LUT networks, FF and FFCE state,
// shift chains, and registered feedback loops — and is fully determined by
// the seed, so conformance campaigns over random designs reproduce
// bit-for-bit. Random designs sit alongside the catalog: they share the
// Spec shape and flow through the same synth/place/board stack.
func Random(seed int64) Spec {
	name := fmt.Sprintf("RAND %d", seed)
	return Spec{
		Name:  name,
		Class: "random",
		Build: func() *netlist.Circuit { return randomNetlist(name, seed) },
	}
}

// RandomCatalog returns n seeded random designs derived from a base seed,
// for registration alongside Catalog() in conformance sweeps.
func RandomCatalog(n int, seed int64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Random(seed + int64(i))
	}
	return specs
}

// replTruth replicates a truth table over k used inputs to the full 16-bit
// LUT table, so the LUT's value is independent of whatever the placer
// routes to the unused inputs.
func replTruth(t uint16, k int) uint16 {
	for w := 1 << uint(k); w < 16; w *= 2 {
		t |= t << uint(w)
	}
	return t
}

func randomNetlist(name string, seed int64) *netlist.Circuit {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(name)

	in := b.Input("in", 2+rng.Intn(5))
	pool := append([]netlist.SignalID(nil), in...)
	pick := func() netlist.SignalID { return pool[rng.Intn(len(pool))] }

	// Registered feedback loops: allocate the loop signals up front so any
	// node can consume them, and close each loop through a flip-flop at the
	// end (FF outputs are cut points, so no combinational cycles arise).
	feedback := make([]netlist.SignalID, rng.Intn(3))
	for i := range feedback {
		feedback[i] = b.NewSignal()
		pool = append(pool, feedback[i])
	}

	for n := 6 + rng.Intn(18); n > 0; n-- {
		switch rng.Intn(8) {
		case 0, 1, 2: // random-truth LUT with 1..4 inputs
			k := 1 + rng.Intn(4)
			ins := make([]netlist.SignalID, k)
			for j := range ins {
				ins[j] = pick()
			}
			truth := replTruth(uint16(rng.Intn(1<<(1<<uint(k)))), k)
			pool = append(pool, b.LUT(truth, ins...))
		case 3, 4: // plain flip-flop
			pool = append(pool, b.FF(pick(), rng.Intn(2) == 1))
		case 5: // flip-flop with routed clock enable
			pool = append(pool, b.FFCE(pick(), pick(), rng.Intn(2) == 1))
		case 6: // shift chain, 1..4 deep
			pool = append(pool, synth.ShiftChain(b, pick(), 1+rng.Intn(4))...)
		default: // small adder over two random slices of the pool
			w := 1 + rng.Intn(3)
			x := make([]netlist.SignalID, w)
			y := make([]netlist.SignalID, w)
			for j := 0; j < w; j++ {
				x[j], y[j] = pick(), pick()
			}
			pool = append(pool, synth.AddTrunc(b, x, y)...)
		}
	}
	for _, s := range feedback {
		b.BindFF(pick(), s, rng.Intn(2) == 1)
	}

	outs := make([]netlist.SignalID, 1+rng.Intn(6))
	for i := range outs {
		outs[i] = b.Buf(pick())
	}
	b.Output("out", outs)
	return b.MustBuild()
}
