// Package designs generates the benchmark circuits of the paper's SEU
// study: the feed-forward, data-path-dominated designs (array multipliers,
// vector multipliers, pipelined multiply-add trees, filter preprocessor)
// and the feedback-dominated designs (LFSR clusters, counter/adder,
// LFSR-multiplier) whose contrasting configuration sensitivity and error
// persistence the paper's Tables I and II report.
//
// The paper's designs target an XQVR1000 (12288 slices); ours are scaled to
// route on the simulated fabric's default experiment geometry while
// preserving what the experiments measure: the family (feedback vs
// feed-forward), the relative area progression within each family, and the
// resource mix per slice. EXPERIMENTS.md records the scaling.
package designs

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/synth"
)

// LFSR builds one Fibonacci linear feedback shift register of the given
// width, seeded non-zero, and returns its stage outputs. Each stage is a
// flip-flop fed through a LUT (buffer or the feedback XOR), matching the
// Virtex slice structure.
func LFSR(b *netlist.Builder, width int, seed uint64) []netlist.SignalID {
	if width < 2 {
		panic("designs: LFSR width must be >= 2")
	}
	if seed == 0 {
		seed = 1
	}
	q := make([]netlist.SignalID, width)
	for i := range q {
		q[i] = b.NewSignal()
	}
	// Feedback taps (width-1, width-4): primitive for the widths the
	// catalogue uses (e.g. x^10 + x^7 + 1, x^20 + x^17 + 1), giving
	// long-period sequences.
	tap := width - 4
	if tap < 0 {
		tap = 0
	}
	fb := b.Xor(q[width-1], q[tap])
	b.BindFF(fb, q[0], seed&1 != 0)
	for i := 1; i < width; i++ {
		d := b.Buf(q[i-1])
		b.BindFF(d, q[i], seed&(1<<uint(i)) != 0)
	}
	return q
}

// LFSRCluster builds the paper's Fig. 10 structure: `clusters` clusters,
// each containing `perCluster` LFSRs of `width` bits whose final stages are
// XOR'ed into one output bit.
func LFSRCluster(name string, clusters, perCluster, width int) *netlist.Circuit {
	b := netlist.NewBuilder(name)
	out := make([]netlist.SignalID, clusters)
	for cl := 0; cl < clusters; cl++ {
		var last []netlist.SignalID
		for k := 0; k < perCluster; k++ {
			q := LFSR(b, width, uint64(cl*perCluster+k+1))
			last = append(last, q[width-1])
		}
		out[cl] = b.XorTree(last)
	}
	b.Output("O", out)
	return b.MustBuild()
}

// Mult builds a registered array multiplier: inputs A and B of the given
// width are captured in input registers, multiplied combinationally, and
// the product is registered — the paper's MULT design class.
func Mult(name string, width int) *netlist.Circuit {
	b := netlist.NewBuilder(name)
	a := b.Input("A", width)
	c := b.Input("B", width)
	ar := synth.Register(b, bufBus(b, a))
	br := synth.Register(b, bufBus(b, c))
	p := synth.Multiply(b, ar, br)
	b.Output("O", synth.Register(b, p))
	return b.MustBuild()
}

// VMult builds the paper's VMULT design class: a vector of lane multipliers
// fed from shared A/B buses. The operand buses are pipelined systolically
// from lane to lane (each lane registers the remaining tail of the bus and
// hands it to the next), which keeps every connection local — the layout
// discipline a real Virtex implementation of a wide vector unit uses. Lane
// i multiplies A[i*w:(i+1)*w] by B[i*w:(i+1)*w], with lane outputs skewed
// by the pipeline depth.
func VMult(name string, lanes, width int) *netlist.Circuit {
	b := netlist.NewBuilder(name)
	a := b.Input("A", lanes*width)
	c := b.Input("B", lanes*width)
	arem := synth.Register(b, bufBus(b, a))
	brem := synth.Register(b, bufBus(b, c))
	var out []netlist.SignalID
	for l := 0; l < lanes; l++ {
		p := synth.Multiply(b, arem[:width], brem[:width])
		out = append(out, synth.Register(b, p)...)
		if l < lanes-1 {
			arem = synth.Register(b, bufBus(b, arem[width:]))
			brem = synth.Register(b, bufBus(b, brem[width:]))
		}
	}
	b.Output("O", out)
	return b.MustBuild()
}

// MultAdd builds the paper's Fig. 9 pipelined multiply-and-add tree: the A
// and B inputs are split into halves, the four cross products are computed
// by parallel multipliers, and a pipelined adder tree reduces them. Pure
// feed-forward: the paper found zero persistent configuration bits in this
// design class.
func MultAdd(name string, width int) *netlist.Circuit {
	if width%2 != 0 {
		panic("designs: MultAdd width must be even")
	}
	h := width / 2
	b := netlist.NewBuilder(name)
	a := b.Input("A", width)
	c := b.Input("B", width)
	// Operand registers travel with the pipeline: each accumulation stage
	// re-registers the operand buses it still needs, so all connections stay
	// local (the layout discipline of the real pipelined tree). With
	// steady-state inputs the output equals alo*blo + alo*bhi + ahi*blo +
	// ahi*bhi; under changing inputs stages see skewed epochs, which is
	// irrelevant to (and faithfully modelled by) the lock-step SEU harness.
	ar := synth.Register(b, bufBus(b, a))
	br := synth.Register(b, bufBus(b, c))
	sel := [][2]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	var acc []netlist.SignalID
	for i, sv := range sel {
		ah := ar[:h]
		if sv[0] {
			ah = ar[h:]
		}
		bh := br[:h]
		if sv[1] {
			bh = br[h:]
		}
		p := synth.Register(b, synth.Multiply(b, ah, bh))
		if acc == nil {
			acc = p
		} else {
			sum, cout := synth.Add(b, acc, p, netlist.Invalid)
			acc = synth.Register(b, append(sum, cout))
		}
		if i < len(sel)-1 {
			ar = synth.Register(b, bufBus(b, ar))
			br = synth.Register(b, bufBus(b, br))
		}
	}
	b.Output("O", synth.Register(b, acc))
	return b.MustBuild()
}

// CounterAdder builds the paper's counter/adder design: a free-running
// binary counter added to the registered A input. The counter's state
// feedback is what produces the design's persistent configuration bits
// (and the paper's Fig. 7 trace).
func CounterAdder(name string, width int) *netlist.Circuit {
	b := netlist.NewBuilder(name)
	a := b.Input("A", width)
	cnt := synth.Counter(b, width)
	ar := synth.Register(b, bufBus(b, a))
	sum, cout := synth.Add(b, cnt, ar, netlist.Invalid)
	b.Output("O", synth.Register(b, append(sum, cout)))
	return b.MustBuild()
}

// LFSRMult builds the paper's LFSR-multiplier: an on-chip LFSR provides one
// multiplicand, the A input the other, mixing feedback state (persistent)
// with a feed-forward datapath (non-persistent).
func LFSRMult(name string, width int) *netlist.Circuit {
	b := netlist.NewBuilder(name)
	a := b.Input("A", width)
	q := LFSR(b, width*2, 0x2D)
	ar := synth.Register(b, bufBus(b, a))
	p := synth.Multiply(b, q[:width], ar)
	b.Output("O", synth.Register(b, p))
	return b.MustBuild()
}

// FilterPreproc builds the paper's filter preprocessor: an input delay line
// feeding a small constant-coefficient FIR computed with shift-and-add.
// Almost entirely feed-forward; its shallow delay line flushes transient
// errors, giving the low persistence the paper reports (1.2%).
func FilterPreproc(name string, width, taps int) *netlist.Circuit {
	b := netlist.NewBuilder(name)
	x := b.Input("A", width)
	// Delay line.
	stage := synth.Register(b, bufBus(b, x))
	delays := [][]netlist.SignalID{stage}
	for t := 1; t < taps; t++ {
		stage = synth.Register(b, bufBus(b, stage))
		delays = append(delays, stage)
	}
	// Coefficients 1, 2, 3, 1, 2, 3, ... via shift-and-add.
	zero := b.Const(false)
	shifted := func(bus []netlist.SignalID, k int) []netlist.SignalID {
		out := make([]netlist.SignalID, 0, len(bus)+k)
		for i := 0; i < k; i++ {
			out = append(out, zero)
		}
		return append(out, bus...)
	}
	var acc []netlist.SignalID
	for t, d := range delays {
		var term []netlist.SignalID
		switch t % 3 {
		case 0: // x1
			term = bufBus(b, d)
		case 1: // x2
			term = shifted(d, 1)
		default: // x3 = x + x<<1
			s, c := synth.Add(b, d, shifted(d, 1), netlist.Invalid)
			term = append(s, c)
		}
		if acc == nil {
			acc = term
		} else {
			s, c := synth.Add(b, acc, term, netlist.Invalid)
			acc = append(s, c)
		}
	}
	b.Output("O", synth.Register(b, acc))
	return b.MustBuild()
}

// bufBus buffers each bit of a bus through a LUT. Input-port signals must
// pass through fabric logic before registers/outputs can bind to them.
func bufBus(b *netlist.Builder, bus []netlist.SignalID) []netlist.SignalID {
	out := make([]netlist.SignalID, len(bus))
	for i, s := range bus {
		out[i] = b.Buf(s)
	}
	return out
}

// Spec names one catalogued benchmark design.
type Spec struct {
	// Name is the paper's label (e.g. "LFSR 72").
	Name string
	// Class is "feedback" or "feedforward" (drives persistence
	// expectations).
	Class string
	// Table lists which paper tables the design appears in (1, 2).
	Tables []int
	// Build generates the scaled circuit.
	Build func() *netlist.Circuit
}

// Catalog returns every paper benchmark, scaled for the default experiment
// geometry (device.Small). The scaling preserves each family's area
// progression: LFSR 18..72 quadruple in area, MULT 12..48 likewise.
func Catalog() []Spec {
	specs := []Spec{
		{Name: "LFSR 18", Class: "feedback", Tables: []int{1},
			Build: func() *netlist.Circuit { return LFSRCluster("LFSR 18", 3, 2, 10) }},
		{Name: "LFSR 36", Class: "feedback", Tables: []int{1},
			Build: func() *netlist.Circuit { return LFSRCluster("LFSR 36", 6, 2, 10) }},
		{Name: "LFSR 54", Class: "feedback", Tables: []int{1},
			Build: func() *netlist.Circuit { return LFSRCluster("LFSR 54", 9, 2, 10) }},
		{Name: "LFSR 72", Class: "feedback", Tables: []int{1, 2},
			Build: func() *netlist.Circuit { return LFSRCluster("LFSR 72", 12, 2, 10) }},
		{Name: "VMULT 18", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return VMult("VMULT 18", 1, 3) }},
		{Name: "VMULT 36", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return VMult("VMULT 36", 2, 3) }},
		{Name: "VMULT 54", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return VMult("VMULT 54", 3, 3) }},
		{Name: "VMULT 72", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return VMult("VMULT 72", 4, 3) }},
		{Name: "MULT 12", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return Mult("MULT 12", 3) }},
		{Name: "MULT 24", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return Mult("MULT 24", 4) }},
		{Name: "MULT 36", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return Mult("MULT 36", 5) }},
		{Name: "MULT 48", Class: "feedforward", Tables: []int{1},
			Build: func() *netlist.Circuit { return Mult("MULT 48", 6) }},
		{Name: "54 Multiply-Add", Class: "feedforward", Tables: []int{2},
			Build: func() *netlist.Circuit { return MultAdd("54 Multiply-Add", 6) }},
		{Name: "36 Counter/Adder", Class: "feedback", Tables: []int{2},
			Build: func() *netlist.Circuit { return CounterAdder("36 Counter/Adder", 9) }},
		{Name: "LFSR Multiplier", Class: "mixed", Tables: []int{2},
			Build: func() *netlist.Circuit { return LFSRMult("LFSR Multiplier", 4) }},
		{Name: "Filter Preproc.", Class: "feedforward", Tables: []int{2},
			Build: func() *netlist.Circuit { return FilterPreproc("Filter Preproc.", 4, 5) }},
	}
	return specs
}

// ByName returns the catalogued design with the given paper label.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("designs: no catalogued design %q", name)
}
