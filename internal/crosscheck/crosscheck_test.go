package crosscheck

import (
	"testing"

	"repro/internal/device"
)

// TestConformanceSlice is the CI-sized slice of the conformance suite: a
// handful of seeded designs (mixing netlist and raw-fabric flavours) swept
// over the full 60-point lattice plus all metamorphic invariants. The full
// suite is `go run ./cmd/crosscheck -designs 200 -seed 1`.
func TestConformanceSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance slice is not short")
	}
	n := 6 // designs 0..5 include two raw-fabric designs (i%3==2)
	err := CheckSuite(device.Tiny(), n, 1, 2, func(r Result) {
		t.Logf("ok %s points=%d injections=%d failures=%d persistent=%d raw=%v",
			r.Design, r.Points, r.Injections, r.Failures, r.Persistent, r.Raw)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDemotedLaneStress sweeps the demoted-lane stress set — designs built
// so that sampled injections concentrate on the vector kernel's windowable
// demotions (LUT-mode flips creating live SRL16s, BRAM content behind a
// read-only port) and its fully scalar residue (BRAM port fields) — over
// the complete 60-point lattice. Every point must produce a byte-identical
// report; a divergence here is a carry-lane exactness bug.
func TestDemotedLaneStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep is not short")
	}
	g := device.Tiny()
	ds, err := StressDesigns(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(3)
	// A denser sample than the rotating suite so the demotion classes are
	// well represented among the sampled bits.
	p.Sample = 0.02
	for _, d := range ds {
		res, err := CheckDesign(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures == 0 {
			t.Fatalf("%s: stress design produced no failures — it is not stressing the demoted path", d.Name)
		}
		t.Logf("ok %s points=%d injections=%d failures=%d persistent=%d",
			res.Design, res.Points, res.Injections, res.Failures, res.Persistent)
	}
}

// TestGenerateDeterministic pins the generator's pure-function-of-seed
// contract: same (geometry, seed, index) must produce the same design
// (name and configuration memory), different indices different designs.
func TestGenerateDeterministic(t *testing.T) {
	g := device.Tiny()
	for i := 0; i < 4; i++ {
		a, err := Generate(g, 7, i)
		if err != nil {
			t.Fatalf("design %d: %v", i, err)
		}
		b, err := Generate(g, 7, i)
		if err != nil {
			t.Fatalf("design %d (again): %v", i, err)
		}
		if a.Name != b.Name {
			t.Fatalf("design %d: names differ: %q vs %q", i, a.Name, b.Name)
		}
		if !a.Placed.Memory.Equal(b.Placed.Memory) {
			t.Fatalf("design %d: regenerated configuration differs", i)
		}
		if (i%3 == 2) != a.Raw {
			t.Fatalf("design %d: Raw=%v, want %v", i, a.Raw, i%3 == 2)
		}
	}
	a, _ := Generate(g, 7, 0)
	b, _ := Generate(g, 8, 0)
	if a.Placed.Memory.Equal(b.Placed.Memory) {
		t.Fatal("different seeds produced identical configurations")
	}
}
