package crosscheck

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/seu"
)

// Metamorphic invariants: properties relating DIFFERENT campaigns (or a
// campaign to direct board manipulation) that must hold by construction of
// the simulator. Unlike the lattice sweep — which checks that equivalent
// configurations agree — these check that deliberately inequivalent
// configurations disagree in exactly the promised way.

func checkInvariants(d Design, p Params, ref *seu.Report) error {
	if err := checkBookkeeping(ref); err != nil {
		return fmt.Errorf("%s: bookkeeping: %w", d.Name, err)
	}
	if err := checkClassifyInvariance(d, p, ref); err != nil {
		return fmt.Errorf("%s: classify-invariance: %w", d.Name, err)
	}
	if err := checkMaxBitsPrefix(d, p, ref); err != nil {
		return fmt.Errorf("%s: maxbits-prefix: %w", d.Name, err)
	}
	if err := checkSampleMonotonic(d, p); err != nil {
		return fmt.Errorf("%s: sample-monotonicity: %w", d.Name, err)
	}
	if err := checkInertBits(d, p); err != nil {
		return fmt.Errorf("%s: inert-injection: %w", d.Name, err)
	}
	if err := checkRepairRestores(d, p, ref); err != nil {
		return fmt.Errorf("%s: repair-restores: %w", d.Name, err)
	}
	return nil
}

// checkBookkeeping validates a single report's internal consistency: counter
// relations, per-kind tallies, record ordering, and record/address kind
// agreement.
func checkBookkeeping(rep *seu.Report) error {
	if rep.Failures > rep.Injections || rep.Persistent > rep.Failures {
		return fmt.Errorf("counter order violated: injections=%d failures=%d persistent=%d",
			rep.Injections, rep.Failures, rep.Persistent)
	}
	if got := rep.InjectionsByKind.Total(); got != rep.Injections {
		return fmt.Errorf("InjectionsByKind totals %d, want %d", got, rep.Injections)
	}
	if got := rep.FailuresByKind.Total(); got != rep.Failures {
		return fmt.Errorf("FailuresByKind totals %d, want %d", got, rep.Failures)
	}
	if int64(len(rep.SensitiveBits)) != rep.Failures {
		return fmt.Errorf("%d bit records for %d failures", len(rep.SensitiveBits), rep.Failures)
	}
	var persistent int64
	for i, b := range rep.SensitiveBits {
		if i > 0 && rep.SensitiveBits[i-1].Addr >= b.Addr {
			return fmt.Errorf("records not strictly ascending at index %d (addr %d)", i, b.Addr)
		}
		if info := rep.Geom.Classify(b.Addr); info.Kind != b.Kind {
			return fmt.Errorf("record %d: kind %s but Classify says %s", b.Addr, b.Kind, info.Kind)
		}
		if b.Persistent {
			persistent++
		}
	}
	if persistent != rep.Persistent {
		return fmt.Errorf("%d persistent records for Persistent=%d", persistent, rep.Persistent)
	}
	return nil
}

// checkClassifyInvariance re-runs the reference campaign with the
// persistence-classification pass disabled: every sensitivity-related field
// must be unchanged (classification only appends a post-failure phase), and
// persistence must vanish.
func checkClassifyInvariance(d Design, p Params, ref *seu.Report) error {
	bd, err := board.New(d.Placed, p.BoardSeed)
	if err != nil {
		return err
	}
	opts := p.options(Reference())
	opts.ClassifyPersistence = false
	rep, err := seu.Run(bd, opts)
	if err != nil {
		return err
	}
	if rep.Persistent != 0 {
		return fmt.Errorf("Persistent=%d with classification off", rep.Persistent)
	}
	if rep.Injections != ref.Injections || rep.Failures != ref.Failures {
		return fmt.Errorf("injections/failures %d/%d, want %d/%d",
			rep.Injections, rep.Failures, ref.Injections, ref.Failures)
	}
	if len(rep.SensitiveBits) != len(ref.SensitiveBits) {
		return fmt.Errorf("%d records, want %d", len(rep.SensitiveBits), len(ref.SensitiveBits))
	}
	for i, b := range rep.SensitiveBits {
		r := ref.SensitiveBits[i]
		if b.Addr != r.Addr || b.Kind != r.Kind || b.FirstErrorCycle != r.FirstErrorCycle ||
			!intsEqual(b.FailedOutputs, r.FailedOutputs) {
			return fmt.Errorf("record %d (addr %d) changed under classification toggle", i, b.Addr)
		}
	}
	return nil
}

// checkMaxBitsPrefix halves the injection cap: the capped run must perform
// exactly MaxBits injections, and its sensitive-bit records must be an exact
// prefix of the reference's — the documented "first MaxBits selected bits in
// ascending address order" semantics.
func checkMaxBitsPrefix(d Design, p Params, ref *seu.Report) error {
	k := ref.Injections / 2
	if k == 0 {
		return nil
	}
	bd, err := board.New(d.Placed, p.BoardSeed)
	if err != nil {
		return err
	}
	opts := p.options(Reference())
	opts.MaxBits = k
	rep, err := seu.Run(bd, opts)
	if err != nil {
		return err
	}
	if rep.Injections != k {
		return fmt.Errorf("capped run injected %d bits, want exactly %d", rep.Injections, k)
	}
	if len(rep.SensitiveBits) > len(ref.SensitiveBits) {
		return fmt.Errorf("capped run found %d sensitive bits, reference only %d",
			len(rep.SensitiveBits), len(ref.SensitiveBits))
	}
	for i, b := range rep.SensitiveBits {
		if !recordsEqual(b, ref.SensitiveBits[i]) {
			return fmt.Errorf("record %d (addr %d) is not a prefix of the reference", i, b.Addr)
		}
	}
	return nil
}

// checkSampleMonotonic runs the campaign uncapped at two sampling rates: the
// per-bit hash selection guarantees the lower rate's injected set — and so
// its sensitive set — is a subset of the higher rate's, with identical
// per-record outcomes (stimulus depends only on (seed, address)).
func checkSampleMonotonic(d Design, p Params) error {
	run := func(sample float64) (*seu.Report, error) {
		bd, err := board.New(d.Placed, p.BoardSeed)
		if err != nil {
			return nil, err
		}
		opts := p.options(Reference())
		opts.Sample = sample
		opts.MaxBits = 0
		return seu.Run(bd, opts)
	}
	small, err := run(p.Sample / 2)
	if err != nil {
		return err
	}
	big, err := run(p.Sample)
	if err != nil {
		return err
	}
	if small.Injections > big.Injections {
		return fmt.Errorf("sample %g injected %d > sample %g's %d",
			p.Sample/2, small.Injections, p.Sample, big.Injections)
	}
	byAddr := make(map[device.BitAddr]seu.BitRecord, len(big.SensitiveBits))
	for _, b := range big.SensitiveBits {
		byAddr[b.Addr] = b
	}
	for _, b := range small.SensitiveBits {
		r, ok := byAddr[b.Addr]
		if !ok {
			return fmt.Errorf("bit %d sensitive at sample %g but absent at sample %g",
				b.Addr, p.Sample/2, p.Sample)
		}
		if !recordsEqual(b, r) {
			return fmt.Errorf("bit %d: record differs between sampling rates", b.Addr)
		}
	}
	return nil
}

// checkInertBits force-injects bits the static cone analysis classifies as
// provably inert and demands they live up to it: every observed clock must
// match, and after restoring the injected frame the configurations must be
// identical again and lock-step must continue. Full state equality is NOT
// asserted — an inert flip may legitimately disturb state outside the
// observed cone (unused FFs, keepers on unobserved wires); the cone only
// promises the comparator and the scrub can never see it. Skipped for
// history-coupled designs, where the mask is conservatively all-sensitive.
func checkInertBits(d Design, p Params) error {
	bd, err := board.New(d.Placed, p.BoardSeed)
	if err != nil {
		return err
	}
	if bd.DUT.HistoryCoupled() {
		return nil
	}
	mask, _ := bd.Golden.SensitivityMask(bd.OutputNetIDs())
	g := bd.Geometry()
	gm := bd.Golden.ConfigMemory()
	total := g.TotalBits()
	// Sample inert non-pad bits evenly across the address space; pad bits
	// are skipped because FastPadSkip already covers them and they carry no
	// decode at all.
	var picked []device.BitAddr
	stride := total/977 + 1
	for a := int64(0); a < total && len(picked) < 12; a += stride {
		addr := device.BitAddr(a)
		if mask.Get(addr) || g.Classify(addr).Kind == device.KindPad {
			continue
		}
		picked = append(picked, addr)
	}
	for _, a := range picked {
		bd.ResetCampaignState(mix(p.Seed, uint64(a)))
		bd.DUT.InjectBit(a)
		if bd.DUT.ConfigMemory().Get(a) == gm.Get(a) {
			return fmt.Errorf("bit %d: injection did not flip the stored bit", a)
		}
		for i := 0; i < p.ObserveCycles; i++ {
			if !bd.Step() {
				return fmt.Errorf("bit %d: output mismatch at cycle %d despite inert classification", a, i)
			}
		}
		if err := bd.Port.WriteFrame(gm.Frame(a.Frame(g))); err != nil {
			return fmt.Errorf("bit %d: repair: %w", a, err)
		}
		if diff := bd.DUT.ConfigMemory().DiffFrames(gm); len(diff) != 0 {
			return fmt.Errorf("bit %d: %d frames differ after frame restore", a, len(diff))
		}
		for i := 0; i < p.ObserveCycles; i++ {
			if !bd.Step() {
				return fmt.Errorf("bit %d: output mismatch at post-repair cycle %d", a, i)
			}
		}
	}
	return nil
}

// checkRepairRestores re-enacts the campaign's repair procedure on a few of
// the reference run's sensitive bits and checks its contract directly:
// scrubbing every differing frame restores configuration equality, reset
// (with the campaign's full-reconfiguration fallback) re-synchronizes the
// outputs, and whenever the lock-step detector subsequently declares the
// pair Locked, they really are fully state-identical — the exactness premise
// of the convergence early exit.
func checkRepairRestores(d Design, p Params, ref *seu.Report) error {
	n := len(ref.SensitiveBits)
	if n == 0 {
		return nil
	}
	idxs := []int{0, n / 2, n - 1}
	bd, err := board.New(d.Placed, p.BoardSeed)
	if err != nil {
		return err
	}
	gm := bd.Golden.ConfigMemory()
	prev := -1
	for _, idx := range idxs {
		if idx == prev {
			continue
		}
		prev = idx
		a := ref.SensitiveBits[idx].Addr
		bd.ResetCampaignState(mix(p.Seed, uint64(a)))
		bd.DUT.InjectBit(a)
		for i := 0; i < p.ObserveCycles; i++ {
			bd.Step()
		}
		dm := bd.DUT.ConfigMemory()
		for _, fidx := range dm.DiffFrames(gm) {
			if err := bd.Port.WriteFrame(gm.Frame(fidx)); err != nil {
				return fmt.Errorf("bit %d: scrubbing frame %d: %w", a, fidx, err)
			}
		}
		if left := dm.DiffFrames(gm); len(left) != 0 {
			return fmt.Errorf("bit %d: %d frames still differ after scrub", a, len(left))
		}
		bd.ResetBoth()
		if !bd.Match() {
			if err := bd.Port.FullConfigure(bitstream.Full(gm)); err != nil {
				return fmt.Errorf("bit %d: full reconfiguration: %w", a, err)
			}
			bd.ResetBoth()
			if !bd.Match() {
				return fmt.Errorf("bit %d: outputs disagree even after full reconfiguration and reset", a)
			}
		}
		for i := 0; i < p.PersistWindow; i++ {
			if bd.Locked() {
				if !bd.StateEqual() {
					return fmt.Errorf("bit %d: Locked() reported without full state equality", a)
				}
				break
			}
			bd.Step()
		}
	}
	return nil
}

func recordsEqual(a, b seu.BitRecord) bool {
	return a.Addr == b.Addr && a.Kind == b.Kind && a.Persistent == b.Persistent &&
		a.FirstErrorCycle == b.FirstErrorCycle && intsEqual(a.FailedOutputs, b.FailedOutputs)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
