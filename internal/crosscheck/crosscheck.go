// Package crosscheck is the randomized differential conformance harness:
// seeded random designs (netlist and raw-fabric) run their injection
// campaign at every point of the configuration lattice — {fastsim on/off} ×
// {triage on/off} × {worker counts} × {sweep/event/auto/vector/vector-sweep
// kernel} — and every
// point must produce a byte-identical canonical report. A set of metamorphic
// invariants (sample-subset monotonicity, MaxBits prefixing, classification
// independence, inert-bit force-injection, repair restoring full state
// equality) cross-checks the campaign against properties the optimized fast
// paths promise but ordinary unit tests cannot see breaking.
package crosscheck

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/board"
	"repro/internal/seu"
)

// Point is one configuration of the campaign lattice.
type Point struct {
	FastSim bool
	Triage  bool
	Workers int
	Kernel  seu.Kernel
}

func (pt Point) String() string {
	return fmt.Sprintf("fastsim=%v triage=%v workers=%d kernel=%s",
		pt.FastSim, pt.Triage, pt.Workers, pt.Kernel)
}

// workerAxis deliberately includes a count (13) large enough that the
// campaign's minimum-work-per-worker clamp engages on small designs.
var workerAxis = []int{1, 4, 13}

// Reference is the lattice origin every other point is compared against:
// every fast path off, sequential, full-sweep kernel.
func Reference() Point {
	return Point{FastSim: false, Triage: false, Workers: 1, Kernel: seu.KernelSweep}
}

// Lattice enumerates the full configuration lattice (60 points). It includes
// the reference point itself, so a sweep also re-checks run-to-run
// reproducibility of the slow path. The kernel axis spans every ParseKernel
// spelling: sweep, event, auto (whose scalar behaviour follows fastsim),
// vector (the 64-lane batch kernel with the event-driven drain, which must
// demote incompatible bits to a scalar path that itself follows auto
// semantics), and vector-sweep (the same lane machine running the full-sweep
// settling loop — the pair pins the two lane kernels to each other as well
// as to the scalar reference).
func Lattice() []Point {
	var pts []Point
	kernels := []seu.Kernel{seu.KernelSweep, seu.KernelEvent, seu.KernelAuto, seu.KernelVector, seu.KernelVectorSweep}
	for _, fs := range []bool{false, true} {
		for _, tr := range []bool{false, true} {
			for _, w := range workerAxis {
				for _, k := range kernels {
					pts = append(pts, Point{FastSim: fs, Triage: tr, Workers: w, Kernel: k})
				}
			}
		}
	}
	return pts
}

// Params are the campaign parameters shared by every lattice point of one
// design's sweep.
type Params struct {
	ObserveCycles int
	PersistWindow int
	CleanRun      int
	// Sample keeps campaigns small while spreading injections over the
	// whole address space. MaxBits stays 0 here — a cap takes the
	// ascending-address prefix of the selected set, which would starve the
	// high end of the bitstream; cap semantics have their own invariant.
	Sample  float64
	MaxBits int64
	// Seed drives per-injection sampling and stimulus; BoardSeed seeds the
	// board's (unused-under-ResetCampaignState) base stimulus stream.
	Seed      int64
	BoardSeed int64
}

// DefaultParams derives sweep parameters from a harness seed.
func DefaultParams(seed int64) Params {
	return Params{
		ObserveCycles: 12,
		PersistWindow: 24,
		CleanRun:      4,
		Sample:        0.005,
		MaxBits:       0,
		Seed:          mix(seed, 0x5eed),
		BoardSeed:     mix(seed, 0xb0a2d),
	}
}

func (p Params) options(pt Point) seu.Options {
	return seu.Options{
		ObserveCycles:       p.ObserveCycles,
		PersistWindow:       p.PersistWindow,
		CleanRun:            p.CleanRun,
		Sample:              p.Sample,
		MaxBits:             p.MaxBits,
		Seed:                p.Seed,
		Workers:             pt.Workers,
		ClassifyPersistence: true,
		CollectBits:         true,
		FastPadSkip:         true,
		Triage:              pt.Triage,
		FastSim:             pt.FastSim,
		Kernel:              pt.Kernel,
	}
}

// runPoint runs one campaign on a freshly configured board.
func runPoint(d Design, p Params, pt Point) (*seu.Report, error) {
	bd, err := board.New(d.Placed, p.BoardSeed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Name, err)
	}
	rep, err := seu.Run(bd, p.options(pt))
	if err != nil {
		return nil, fmt.Errorf("%s at (%s): %w", d.Name, pt, err)
	}
	return rep, nil
}

// canonicalBit is the deterministic projection of a seu.BitRecord.
type canonicalBit struct {
	Addr            int64  `json:"addr"`
	Kind            string `json:"kind"`
	Persistent      bool   `json:"persistent"`
	FirstErrorCycle int    `json:"first_error_cycle"`
	FailedOutputs   []int  `json:"failed_outputs"`
}

// canonicalReport is the deterministic projection of a seu.Report: every
// field the campaign promises is invariant across the lattice, and nothing
// else (WallTime, TriageSkipped, CyclesSimulated/Skipped are diagnostics
// that legitimately vary).
type canonicalReport struct {
	Design           string         `json:"design"`
	Geom             string         `json:"geom"`
	SlicesUsed       int            `json:"slices_used"`
	Injections       int64          `json:"injections"`
	Failures         int64          `json:"failures"`
	Persistent       int64          `json:"persistent"`
	InjectionsByKind seu.KindCounts `json:"injections_by_kind"`
	FailuresByKind   seu.KindCounts `json:"failures_by_kind"`
	SimulatedTimeNS  int64          `json:"simulated_time_ns"`
	Bits             []canonicalBit `json:"bits"`
}

// canonicalBytes serializes the invariant projection of a report. Two
// campaigns agree iff their canonical bytes are equal.
func canonicalBytes(rep *seu.Report) ([]byte, error) {
	c := canonicalReport{
		Design:           rep.Design,
		Geom:             rep.Geom.String(),
		SlicesUsed:       rep.SlicesUsed,
		Injections:       rep.Injections,
		Failures:         rep.Failures,
		Persistent:       rep.Persistent,
		InjectionsByKind: rep.InjectionsByKind,
		FailuresByKind:   rep.FailuresByKind,
		SimulatedTimeNS:  rep.SimulatedTime.Nanoseconds(),
		Bits:             make([]canonicalBit, 0, len(rep.SensitiveBits)),
	}
	for _, b := range rep.SensitiveBits {
		c.Bits = append(c.Bits, canonicalBit{
			Addr:            int64(b.Addr),
			Kind:            b.Kind.String(),
			Persistent:      b.Persistent,
			FirstErrorCycle: b.FirstErrorCycle,
			FailedOutputs:   b.FailedOutputs,
		})
	}
	return json.Marshal(&c)
}

// Result summarizes one design's completed conformance sweep.
type Result struct {
	Design     string
	Raw        bool
	Points     int
	Injections int64
	Failures   int64
	Persistent int64
}

// CheckDesign sweeps one design over the full lattice plus the metamorphic
// invariants, returning a non-nil error describing the first conformance
// violation found.
func CheckDesign(d Design, p Params) (*Result, error) {
	ref, err := runPoint(d, p, Reference())
	if err != nil {
		return nil, err
	}
	if ref.Injections == 0 {
		return nil, fmt.Errorf("%s: reference campaign injected nothing (sample/maxbits too small to conform-test)", d.Name)
	}
	if ref.TriageSkipped != 0 || ref.CyclesSkipped != 0 {
		return nil, fmt.Errorf("%s: reference campaign used a fast path (triage skipped %d, cycles skipped %d)",
			d.Name, ref.TriageSkipped, ref.CyclesSkipped)
	}
	refBytes, err := canonicalBytes(ref)
	if err != nil {
		return nil, err
	}

	pts := Lattice()
	for _, pt := range pts {
		rep, err := runPoint(d, p, pt)
		if err != nil {
			return nil, err
		}
		if !pt.Triage && rep.TriageSkipped != 0 {
			return nil, fmt.Errorf("%s at (%s): TriageSkipped=%d with triage off", d.Name, pt, rep.TriageSkipped)
		}
		if !pt.FastSim && rep.CyclesSkipped != 0 {
			return nil, fmt.Errorf("%s at (%s): CyclesSkipped=%d with fastsim off", d.Name, pt, rep.CyclesSkipped)
		}
		got, err := canonicalBytes(rep)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, refBytes) {
			return nil, fmt.Errorf("%s at (%s): report diverges from reference:\n%s",
				d.Name, pt, diffHint(refBytes, got))
		}
	}

	if err := checkInvariants(d, p, ref); err != nil {
		return nil, err
	}

	return &Result{
		Design:     d.Name,
		Raw:        d.Raw,
		Points:     len(pts),
		Injections: ref.Injections,
		Failures:   ref.Failures,
		Persistent: ref.Persistent,
	}, nil
}

// diffHint renders the first divergence between two canonical serializations
// with a little surrounding context, enough to see which field broke.
func diffHint(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	window := func(b []byte) string {
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("  reference (len %d): ...%s...\n  got       (len %d): ...%s...\n  (first divergence at byte %d)",
		len(want), window(want), len(got), window(got), i)
}
