package crosscheck

import (
	"fmt"
	"math/rand"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

// Design generation. The conformance suite alternates between two flavours:
// netlist designs drawn from designs.Random and pushed through the real
// synth/place flow, and raw-fabric designs built directly on the
// configuration fabric to reach resources the netlist flow cannot express —
// SRL16 LUTs, BRAM ports, and long-line wired-ANDs. Both flavours are pure
// functions of their seed.
//
// Raw-fabric designs obey one hard constraint: the GOLDEN configuration must
// never mutate itself (no free-running SRL shifts, no fault-free BRAM
// writes), because the campaign repairs the DUT toward a static golden
// snapshot. SRLs therefore sit behind CEConstZero and BRAM write enables are
// tied to constant-zero outputs — still history-coupled by the static rule
// (which is what disables triage and the early exit), while injected-DUT
// dynamics remain fully exercised and repairable.

// Design is one generated conformance design.
type Design struct {
	Name   string
	Placed *place.Placed
	// Raw marks a raw-fabric design (built with fpga.ConfigBuilder rather
	// than placed from a netlist).
	Raw bool
}

// mix derives a sub-seed from (seed, lane) with a splitmix64-style
// finalizer, so every generated artifact is decorrelated but reproducible.
func mix(seed int64, lane uint64) int64 {
	x := uint64(seed) ^ (lane+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Generate returns design i of the seeded suite on geometry g. Every third
// design is raw-fabric; the rest are random netlists. Netlist generation
// retries a bounded number of derived seeds when a candidate does not fit
// the geometry, so the suite is total and still deterministic.
func Generate(g device.Geometry, baseSeed int64, i int) (Design, error) {
	seed := mix(baseSeed, uint64(i))
	if i%3 == 2 {
		p, err := rawDesign(g, seed)
		if err != nil {
			return Design{}, fmt.Errorf("crosscheck: raw design %d: %w", i, err)
		}
		return Design{Name: p.Circuit.Name, Placed: p, Raw: true}, nil
	}
	for attempt := 0; attempt < 16; attempt++ {
		spec := designs.Random(mix(seed, uint64(attempt)))
		p, err := place.Place(spec.Build(), g)
		if err == nil {
			return Design{Name: spec.Name, Placed: p}, nil
		}
	}
	return Design{}, fmt.Errorf("crosscheck: netlist design %d: no candidate placed after 16 attempts", i)
}

// StressDesigns returns the demoted-lane stress set: seeded vector-eligible
// designs that maximize the traffic the vector kernel must demote and carry
// — LUT-mode bit flips that turn live LUTs into active SRL16s (the
// windowable demotion riding lanes for its clean/persist windows) and BRAM
// content/port bits behind a statically read-only port (content flips are
// windowable, port-field flips stay fully scalar). Unlike the suite's
// rotating raw designs, none of these is history-coupled, so the vector
// kernel engages rather than falling back wholesale.
func StressDesigns(g device.Geometry, seed int64) ([]Design, error) {
	type gen struct {
		tag   string
		build func(device.Geometry, int64) (*place.Placed, error)
	}
	gens := []gen{
		{"srl", stressLUTDense},
		{"bram", stressBRAMReadOnly},
		{"mix", stressMixed},
	}
	var ds []Design
	for i, gn := range gens {
		p, err := gn.build(g, mix(seed, uint64(0x57e55+i)))
		if err != nil {
			return nil, fmt.Errorf("crosscheck: stress design %s: %w", gn.tag, err)
		}
		ds = append(ds, Design{Name: p.Circuit.Name, Placed: p, Raw: true})
	}
	return ds, nil
}

// stressCells fills rows [rLo, rHi) of columns [0, cols) with a snake of
// registered accumulators plus combinational taps, seeded by a toggle cell
// at (rLo, 0). Every LUT is live in normal mode, so any sampled LUT-mode
// bit flip creates an active SRL16 whose shifting truth table feeds real
// observers — the densest possible demoted-lane workload. Returns the
// output refs it wants observed.
func stressCells(b *fpga.ConfigBuilder, rng *rand.Rand, rLo, rHi, cols int,
	addSite func(r, c, o int, reg bool)) []device.NetRef {
	var outs []device.NetRef
	for r := rLo; r < rHi; r++ {
		for c := 0; c < cols; c++ {
			if r == rLo && c == 0 {
				// Seed toggle: FF0 inverts itself every cycle.
				b.SetLUT(r, c, 0, fpga.TruthNot)
				b.RouteInput(r, c, 0, 0, 0)
			} else {
				// Accumulator: own registered out0 XOR the neighbour's
				// out0 (west, or north at a row start).
				b.SetLUT(r, c, 0, fpga.TruthXor2)
				b.RouteInput(r, c, 0, 0, 0)
				if c == 0 {
					b.RouteInput(r, c, 0, 1, 12) // north out0
				} else {
					b.RouteInput(r, c, 0, 1, 4) // west out0
				}
			}
			b.SetFF(r, c, 0, rng.Intn(2) == 1, device.CEConstOne, 0, false)
			b.SetOutMux(r, c, 0, true)
			addSite(r, c, 0, true)
			// Combinational tap: seeded truth of (own out0, west out1).
			b.SetLUT(r, c, 1, uint16(rng.Uint32())|1) // never constant-zero
			b.RouteInput(r, c, 1, 0, 0)
			b.RouteInput(r, c, 1, 1, 5)
			b.SetOutMux(r, c, 1, false)
			addSite(r, c, 1, false)
		}
	}
	// Observe the snake ends and a seeded mid-row tap, both slots.
	last := rHi - 1
	outs = append(outs,
		device.NetRef{Kind: device.NetCLBOut, R: last, C: cols - 1, O: 0},
		device.NetRef{Kind: device.NetCLBOut, R: last, C: cols - 1, O: 1},
		device.NetRef{Kind: device.NetCLBOut, R: rLo, C: cols - 1, O: 1},
		device.NetRef{Kind: device.NetCLBOut, R: rLo + (rHi-rLo)/2, C: rng.Intn(cols), O: 0},
	)
	return outs
}

// stressROBRAM attaches a statically read-only port of BRAM block (0, blk):
// enable tied to a constant-one output, write enable left unbound (the
// no-WE port keeps the design outside the history-coupled rule), three
// address bits on registered toggles, full seeded content, and two dout
// bits observed on column long lines. Content-bit flips become windowable
// demotions; port-field flips exercise the fully scalar residue.
func stressROBRAM(b *fpga.ConfigBuilder, rng *rand.Rand, g device.Geometry, blk int,
	addSite func(r, c, o int, reg bool)) []device.NetRef {
	rb := g.BRAMRowBase(blk)
	ac := g.BRAMAdjCol(0)
	// Constant-one EN driver.
	b.SetLUT(rb, ac, 2, fpga.TruthOne)
	b.SetOutMux(rb, ac, 2, false)
	addSite(rb, ac, 2, false)
	b.BindBRAMEN(0, blk, 0, 2)
	// Three toggling address bits with staggered periods: FF k inverts
	// itself through LUT k, initialized from the seed.
	for j := 0; j < 3; j++ {
		r := rb + 1 + j
		b.SetLUT(r, ac, 2, fpga.TruthNot)
		b.RouteInput(r, ac, 2, 0, 2)
		b.SetFF(r, ac, 2, rng.Intn(2) == 1, device.CEConstOne, 0, false)
		b.SetOutMux(r, ac, 2, true)
		addSite(r, ac, 2, true)
		b.BindBRAMAddr(0, blk, j, 1+j, 2)
	}
	// Seeded content everywhere: addressed words make dout move; the rest
	// are benign-but-simulated demotions.
	for w := 0; w < 1<<device.BRAMAddrBits; w++ {
		b.SetBRAMWord(0, blk, w, uint16(rng.Uint32()))
	}
	ch := rng.Intn(device.LongLinesPerCol)
	b.DriveBRAMDout(0, blk, ch, rng.Intn(device.BRAMWidth))
	ch2 := (ch + 1) % device.LongLinesPerCol
	b.DriveBRAMDout(0, blk, ch2, rng.Intn(device.BRAMWidth))
	return []device.NetRef{
		{Kind: device.NetColLL, C: ac, O: ch},
		{Kind: device.NetColLL, C: ac, O: ch2},
	}
}

// stressBounds validates the geometry and returns the usable row band.
func stressBounds(g device.Geometry) error {
	if g.Rows < 6 || g.Cols < 4 {
		return fmt.Errorf("geometry %s too small for stress designs", g)
	}
	return nil
}

// stressLUTDense is the SRL16-heavy stress design: every CLB in a band
// carries live normal-mode LUTs, so LUT-mode injections create active
// shift registers wherever they land.
func stressLUTDense(g device.Geometry, seed int64) (*place.Placed, error) {
	if err := stressBounds(g); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := fpga.NewConfigBuilder(g)
	var sites []place.Site
	node := 0
	addSite := func(r, c, o int, reg bool) {
		sites = append(sites, place.Site{R: r, C: c, O: o, Registered: reg, Node: node})
		node++
	}
	outs := stressCells(b, rng, 1, g.Rows-1, g.Cols, addSite)
	return finishStress(b, fmt.Sprintf("STRS SRL %d", seed), g, outs, sites)
}

// stressBRAMReadOnly is the BRAM-port stress design: a read-only port with
// live addressing over seeded content, plus a thin strip of logic for
// autonomous activity.
func stressBRAMReadOnly(g device.Geometry, seed int64) (*place.Placed, error) {
	if err := stressBounds(g); err != nil {
		return nil, err
	}
	if g.BRAMCols < 1 || g.Rows < g.BRAMRowBase(0)+4 {
		return nil, fmt.Errorf("geometry %s lacks BRAM rows for stress designs", g)
	}
	rng := rand.New(rand.NewSource(seed))
	b := fpga.NewConfigBuilder(g)
	var sites []place.Site
	node := 0
	addSite := func(r, c, o int, reg bool) {
		sites = append(sites, place.Site{R: r, C: c, O: o, Registered: reg, Node: node})
		node++
	}
	outs := stressCells(b, rng, 1, 3, g.Cols/2, addSite)
	outs = append(outs, stressROBRAM(b, rng, g, 0, addSite)...)
	return finishStress(b, fmt.Sprintf("STRS BRAM %d", seed), g, outs, sites)
}

// stressMixed combines the dense-LUT band with a second read-only BRAM
// block, packing both demotion classes into one campaign.
func stressMixed(g device.Geometry, seed int64) (*place.Placed, error) {
	if err := stressBounds(g); err != nil {
		return nil, err
	}
	blk := g.BRAMBlocksPerCol() - 1
	if g.BRAMCols < 1 || g.Rows < g.BRAMRowBase(blk)+4 {
		return nil, fmt.Errorf("geometry %s lacks BRAM rows for stress designs", g)
	}
	rng := rand.New(rand.NewSource(seed))
	b := fpga.NewConfigBuilder(g)
	var sites []place.Site
	node := 0
	addSite := func(r, c, o int, reg bool) {
		sites = append(sites, place.Site{R: r, C: c, O: o, Registered: reg, Node: node})
		node++
	}
	// Columns 0..Cols-2 only: the BRAM-adjacent column belongs to the port
	// drivers (slot 2 there stays free of the snake's slots 0/1 anyway,
	// but separate columns keep the routing legible).
	outs := stressCells(b, rng, 1, g.Rows-1, g.Cols-1, addSite)
	outs = append(outs, stressROBRAM(b, rng, g, blk, addSite)...)
	return finishStress(b, fmt.Sprintf("STRS MIX %d", seed), g, outs, sites)
}

// finishStress pre-flights a stress configuration (it must decode, run, and
// stay outside the history-coupled rule) and wraps it as a placement.
func finishStress(b *fpga.ConfigBuilder, name string, g device.Geometry, outs []device.NetRef, sites []place.Site) (*place.Placed, error) {
	f, err := b.Device()
	if err != nil {
		return nil, err
	}
	if f.HistoryCoupled() {
		return nil, fmt.Errorf("%s decoded history-coupled; the vector kernel would fall back wholesale", name)
	}
	f.StepN(4)
	return place.FromFabric(name, g, b.Memory(), nil, outs, sites), nil
}

// rawDesign builds a seeded raw-fabric design: a toggle cell and a 4-bit
// LFSR provide autonomous activity; optional features add a static SRL16
// with live addressing, a long-line wired-AND with a fabric consumer, an
// FF chain, a hex-wire (half-latch keeper) tap, and a read-only-in-golden
// BRAM port driving a column long line.
func rawDesign(g device.Geometry, seed int64) (*place.Placed, error) {
	if g.Rows < 8 || g.Cols < 6 {
		return nil, fmt.Errorf("geometry %s too small for raw designs", g)
	}
	rng := rand.New(rand.NewSource(seed))
	b := fpga.NewConfigBuilder(g)
	name := fmt.Sprintf("RAWF %d", seed)

	var outs []device.NetRef
	var sites []place.Site
	node := 0
	addSite := func(r, c, o int, reg bool) {
		sites = append(sites, place.Site{R: r, C: c, O: o, Registered: reg, Node: node})
		node++
	}

	r0 := 2 + rng.Intn(g.Rows-3) // keep clear of row 0 (BRAM drivers) and leave room for r0+1

	// Toggle cell at (r0, 0): FF0 inverts itself every cycle.
	b.SetLUT(r0, 0, 0, fpga.TruthNot)
	b.RouteInput(r0, 0, 0, 0, 0) // own out0
	b.SetFF(r0, 0, 0, rng.Intn(2) == 1, device.CEConstOne, 0, false)
	b.SetOutMux(r0, 0, 0, true)
	addSite(r0, 0, 0, true)
	outs = append(outs, device.NetRef{Kind: device.NetCLBOut, R: r0, C: 0, O: 0})

	// 4-bit LFSR at (r0, 1): FF k+1 shifts from out k, FF0 closes the loop
	// with out3 XOR out1. FF0 inits to 1 so reset state is nonzero.
	b.SetLUT(r0, 1, 0, fpga.TruthXor2)
	b.RouteInput(r0, 1, 0, 0, 3) // own out3
	b.RouteInput(r0, 1, 0, 1, 1) // own out1
	for l := 1; l < device.LUTsPerCLB; l++ {
		b.SetLUT(r0, 1, l, fpga.TruthBuf)
		b.RouteInput(r0, 1, l, 0, l-1) // own out l-1
	}
	for k := 0; k < device.FFsPerCLB; k++ {
		b.SetFF(r0, 1, k, k == 0, device.CEConstOne, 0, false)
		b.SetOutMux(r0, 1, k, true)
		addSite(r0, 1, k, true)
	}
	outs = append(outs, device.NetRef{Kind: device.NetCLBOut, R: r0, C: 1, O: 3})

	// Static SRL16 at (r0, 2) LUT1: shift-register mode with CEConstZero (a
	// tap-addressable ROM in the fault-free design — injections can bring
	// the shift to life in the DUT). The LFSR's bits address the tap, so the
	// observed output is live.
	if rng.Intn(10) < 6 {
		b.SetSRL(r0, 2, 1, true)
		b.SetLUT(r0, 2, 1, uint16(rng.Uint32()))
		for in := 0; in < 3; in++ {
			b.RouteInput(r0, 2, 1, in, 5+in) // west (LFSR) outs 1..3
		}
		b.RouteInput(r0, 2, 1, 3, 4) // shift-in: west out0
		b.SetFF(r0, 2, 1, false, device.CEConstZero, 0, false)
		b.SetOutMux(r0, 2, 1, false)
		addSite(r0, 2, 1, false)
		outs = append(outs, device.NetRef{Kind: device.NetCLBOut, R: r0, C: 2, O: 1})
	}

	// Long-line wired-AND on a row channel: the toggle cell and the LFSR's
	// out3 both drive it, and a consumer cell taps it back into logic.
	if rng.Intn(10) < 7 {
		ch := rng.Intn(device.LongLinesPerRow)
		b.DriveLL(r0, 0, ch, 0)
		b.DriveLL(r0, 1, ch, 3)
		outs = append(outs, device.NetRef{Kind: device.NetRowLL, R: r0, O: ch})
		b.SetLUT(r0, 3, 0, fpga.TruthBuf)
		b.RouteInput(r0, 3, 0, 0, 24+ch) // row long line
		b.SetOutMux(r0, 3, 0, false)
		addSite(r0, 3, 0, false)
		outs = append(outs, device.NetRef{Kind: device.NetCLBOut, R: r0, C: 3, O: 0})
	}

	// Hex-wire tap at (r0, 3) LUT2: rows above HexDistance read a real CLB
	// output; rows below read an undriven wire's half-latch keeper.
	if rng.Intn(10) < 5 {
		b.SetLUT(r0, 3, 2, fpga.TruthBuf)
		b.RouteInput(r0, 3, 2, 0, 20) // hex wire channel 0
		b.SetOutMux(r0, 3, 2, false)
		addSite(r0, 3, 2, false)
		outs = append(outs, device.NetRef{Kind: device.NetCLBOut, R: r0, C: 3, O: 2})
	}

	// FF chain along row r0+1, fed from the toggle cell to the north.
	if rng.Intn(10) < 7 {
		for c := 0; c < 4; c++ {
			b.SetLUT(r0+1, c, 0, fpga.TruthBuf)
			if c == 0 {
				b.RouteInput(r0+1, c, 0, 0, 12) // north out0 (the toggle)
			} else {
				b.RouteInput(r0+1, c, 0, 0, 4) // west out0
			}
			b.SetFF(r0+1, c, 0, false, device.CEConstOne, 0, false)
			b.SetOutMux(r0+1, c, 0, true)
			addSite(r0+1, c, 0, true)
		}
		outs = append(outs, device.NetRef{Kind: device.NetCLBOut, R: r0 + 1, C: 3, O: 0})
	}

	// BRAM port: enabled, write enable tied to a constant-zero output (so
	// golden content never changes), address bit 0 toggling, dout bit on a
	// column long line. Still history-coupled by the static EN+WE rule.
	if g.BRAMCols > 0 && rng.Intn(10) < 6 {
		blk := rng.Intn(g.BRAMBlocksPerCol())
		rb := g.BRAMRowBase(blk)
		ac := g.BRAMAdjCol(0)
		// Constant-one EN driver.
		b.SetLUT(rb, ac, 0, fpga.TruthOne)
		b.SetOutMux(rb, ac, 0, false)
		addSite(rb, ac, 0, false)
		b.BindBRAMEN(0, blk, 0, 0)
		// Constant-zero WE driver (an unprogrammed LUT reads zero; the site
		// is configured explicitly so the intent survives injection triage).
		b.SetLUT(rb+1, ac, 0, fpga.TruthZero)
		b.SetOutMux(rb+1, ac, 0, false)
		addSite(rb+1, ac, 0, false)
		b.BindBRAMWE(0, blk, 1, 0)
		// Toggling address bit 0.
		b.SetLUT(rb+2, ac, 0, fpga.TruthNot)
		b.RouteInput(rb+2, ac, 0, 0, 0)
		b.SetFF(rb+2, ac, 0, false, device.CEConstOne, 0, false)
		b.SetOutMux(rb+2, ac, 0, true)
		addSite(rb+2, ac, 0, true)
		b.BindBRAMAddr(0, blk, 0, 2, 0)
		// Distinct content in the two addressed words so the output moves.
		b.SetBRAMWord(0, blk, 0, uint16(rng.Uint32()))
		b.SetBRAMWord(0, blk, 1, uint16(rng.Uint32()))
		ch := rng.Intn(device.LongLinesPerCol)
		bit := rng.Intn(device.BRAMWidth)
		b.DriveBRAMDout(0, blk, ch, bit)
		outs = append(outs, device.NetRef{Kind: device.NetColLL, C: ac, O: ch})
	}

	// Pre-flight: the configuration must decode and run.
	f, err := b.Device()
	if err != nil {
		return nil, err
	}
	f.StepN(4)

	return place.FromFabric(name, g, b.Memory(), nil, outs, sites), nil
}
