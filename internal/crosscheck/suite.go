package crosscheck

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/device"
)

// CheckSuite generates designs 0..n-1 from (g, seed) and runs the full
// conformance sweep on each, spreading designs over `parallel` goroutines
// (each design's own campaigns additionally use the lattice's worker axis).
// progress, if non-nil, is called once per passing design, unordered.
// The first conformance violation aborts the suite and is returned.
func CheckSuite(g device.Geometry, n int, seed int64, parallel int, progress func(Result)) error {
	return CheckSuiteContext(context.Background(), g, n, seed, parallel, progress)
}

// CheckSuiteContext is CheckSuite with cancellation: a cancelled ctx stops
// launching designs, lets in-flight checks finish, and returns ctx's error
// (unless a conformance violation already occurred, which wins).
func CheckSuiteContext(ctx context.Context, g device.Geometry, n int, seed int64, parallel int, progress func(Result)) error {
	if parallel < 1 {
		parallel = 1
	}
	p := DefaultParams(seed)

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if failed() || ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed() || ctx.Err() != nil {
				return
			}
			d, err := Generate(g, seed, i)
			if err != nil {
				fail(fmt.Errorf("design %d: %w", i, err))
				return
			}
			res, err := CheckDesign(d, p)
			if err != nil {
				fail(fmt.Errorf("design %d: %w", i, err))
				return
			}
			if progress != nil {
				mu.Lock()
				progress(*res)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
