package groundlink

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/scrub"
)

func TestTransferTimeArithmetic(t *testing.T) {
	l := Link{RateBitsPerSec: 10_000_000}
	// 10 Mbit link: 1.25 MB/s; 12.5 MB takes 10s.
	got := l.TransferTime(12_500_000)
	if got != 10*time.Second {
		t.Fatalf("transfer time = %v, want 10s", got)
	}
	l.Overhead = time.Second
	if l.TransferTime(0) != time.Second {
		t.Error("overhead not applied")
	}
}

func TestFlightUploadFitsOnePass(t *testing.T) {
	// The flight concept: one configuration upload per ground pass. A full
	// XQVR1000 bitstream (~740 KB) over 10 Mbit/s is well under a typical
	// LEO contact window.
	g := device.XQVR1000()
	bs := fpga.NewConfigBuilder(g).FullBitstream()
	l := Flight()
	up := l.UploadTime(bs)
	if up > 2*time.Minute {
		t.Fatalf("upload time %v implausibly long", up)
	}
	soh := make([]scrub.Detection, 500)
	if !l.FitsInPass(bs, soh, TypicalLEOPass()) {
		t.Fatalf("upload (%v) + SOH downlink does not fit a pass", up)
	}
}

func TestSOHRoundTrip(t *testing.T) {
	dets := []scrub.Detection{
		{Device: 1, Frame: 337, At: 92 * time.Second, Action: scrub.ActionRepaired},
		{Device: 8, Frame: -1, At: 3 * time.Hour, Action: scrub.ActionFullReconfig},
		{Device: 0, Frame: 4655, At: 0, Action: scrub.ActionRepaired},
	}
	raw := EncodeSOH(dets)
	back, err := DecodeSOH(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(dets) {
		t.Fatalf("decoded %d records", len(back))
	}
	for i := range dets {
		if back[i] != dets[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], dets[i])
		}
	}
}

func TestSOHDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeSOH(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodeSOH([]byte("XXXX\x00\x00\x00\x01")); err == nil {
		t.Error("bad magic accepted")
	}
	raw := EncodeSOH([]scrub.Detection{{Device: 1}})
	if _, err := DecodeSOH(raw[:len(raw)-3]); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestEmptySOH(t *testing.T) {
	back, err := DecodeSOH(EncodeSOH(nil))
	if err != nil || len(back) != 0 {
		t.Fatalf("empty SOH round trip: %v %v", back, err)
	}
}
