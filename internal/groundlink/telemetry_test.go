package groundlink

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

func sampleFrame() TelemetryFrame {
	return TelemetryFrame{
		Board: 41, Seq: 7, Strategy: 2,
		Records: []TelemetryRecord{
			{At: 90 * time.Minute, Device: 1, Kind: TelDetect, Frame: 300, Data: 5160},
			{At: 90*time.Minute + 100*time.Microsecond, Device: 1, Kind: TelRepair, Frame: 300, Data: 5260},
			{At: 3 * time.Hour, Device: 2, Kind: TelFullReconfig, Frame: -1, Data: 0},
			{At: 4 * time.Hour, Device: 0, Kind: TelHeartbeat, Frame: -1, Data: 12},
		},
	}
}

func TestTelemetryRoundTrip(t *testing.T) {
	f := sampleFrame()
	enc, err := EncodeTelemetry(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != TelemetryFrameSize(len(f.Records)) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), TelemetryFrameSize(len(f.Records)))
	}
	back, err := DecodeTelemetry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, f) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, f)
	}
}

func TestTelemetryRejectsMalformed(t *testing.T) {
	good, err := EncodeTelemetry(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        nil,
		"short header": good[:10],
		"bad magic":    append([]byte("XLM1"), good[4:]...),
		"truncated":    good[:len(good)-1],
		"trailing":     append(bytes.Clone(good), 0),
	}
	// Count larger than the body delivers.
	overCount := bytes.Clone(good)
	binary.BigEndian.PutUint32(overCount[13:17], 1000000)
	cases["oversized count"] = overCount
	// Unknown record kind.
	badKind := bytes.Clone(good)
	badKind[telHeaderLen+9] = 200
	cases["unknown kind"] = badKind
	// Reserved strategy id.
	badStrat := bytes.Clone(good)
	badStrat[12] = 0xFF
	cases["reserved strategy"] = badStrat

	for name, raw := range cases {
		if _, err := DecodeTelemetry(raw); err == nil {
			t.Errorf("%s: DecodeTelemetry accepted malformed frame", name)
		}
	}
}

func TestTelemetryEncodeRejectsUnencodable(t *testing.T) {
	if _, err := EncodeTelemetry(TelemetryFrame{Records: make([]TelemetryRecord, MaxTelemetryRecords+1)}); err == nil {
		t.Error("oversized record batch accepted")
	}
	if _, err := EncodeTelemetry(TelemetryFrame{Strategy: 0x80}); err == nil {
		t.Error("reserved strategy id accepted")
	}
	if _, err := EncodeTelemetry(TelemetryFrame{Records: []TelemetryRecord{{Kind: 99}}}); err == nil {
		t.Error("unknown record kind accepted")
	}
}

func TestTelemetryKindStrings(t *testing.T) {
	for k := TelDetect; k <= telKindMax; k++ {
		if s := k.String(); s == "" || s == "kind(0)" {
			t.Errorf("kind %d has bad name %q", k, s)
		}
	}
	if TelemetryKind(77).String() != "kind(77)" {
		t.Error("unknown kind must stringify defensively")
	}
}
