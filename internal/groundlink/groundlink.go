// Package groundlink models the 10 Mbit spacecraft interface (§II): the
// channel used to "send commands to the payload, upload configurations for
// the FPGAs, query state of health, and retrieve experimental data".
// Uploads must fit within ground-station passes — the paper notes that "a
// configuration upload requires one pass over a ground station, during
// which state of health data must be downlinked and control parameters
// uplinked".
package groundlink

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/scrub"
)

// FlightRateBitsPerSec is the flight interface's 10 Mbit rate.
const FlightRateBitsPerSec = 10_000_000

// Link models the payload<->ground channel.
type Link struct {
	// RateBitsPerSec is the usable channel rate.
	RateBitsPerSec int64
	// Overhead is a fixed protocol cost per transfer.
	Overhead time.Duration
}

// Flight returns the flight-configured link.
func Flight() Link {
	return Link{RateBitsPerSec: FlightRateBitsPerSec, Overhead: 250 * time.Millisecond}
}

// TransferTime returns the channel time for a payload of n bytes.
func (l Link) TransferTime(n int) time.Duration {
	bits := int64(n) * 8
	return l.Overhead + time.Duration(float64(bits)/float64(l.RateBitsPerSec)*float64(time.Second))
}

// UploadTime returns how long a configuration upload occupies the channel.
func (l Link) UploadTime(bs *bitstream.Bitstream) time.Duration {
	return l.TransferTime(len(bs.Marshal()))
}

// Pass is one ground-station contact window.
type Pass struct {
	Contact time.Duration
}

// TypicalLEOPass returns a representative LEO contact window.
func TypicalLEOPass() Pass { return Pass{Contact: 8 * time.Minute} }

// FitsInPass reports whether an upload plus a state-of-health downlink fits
// one contact window.
func (l Link) FitsInPass(bs *bitstream.Bitstream, soh []scrub.Detection, p Pass) bool {
	need := l.UploadTime(bs) + l.TransferTime(len(EncodeSOH(soh)))
	return need <= p.Contact
}

// State-of-health wire format: a compact record per detection, the
// subsystem record "stored and later relayed back to the ground station".

// EncodeSOH serializes detections for downlink.
func EncodeSOH(dets []scrub.Detection) []byte {
	var buf bytes.Buffer
	buf.WriteString("SOH1")
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(dets)))
	buf.Write(u32[:])
	for _, d := range dets {
		var rec [17]byte
		rec[0] = byte(d.Device)
		binary.BigEndian.PutUint32(rec[1:5], uint32(int32(d.Frame)))
		binary.BigEndian.PutUint64(rec[5:13], uint64(d.At))
		if d.Action == scrub.ActionFullReconfig {
			rec[13] = 1
		}
		buf.Write(rec[:])
	}
	return buf.Bytes()
}

// DecodeSOH parses a downlinked state-of-health record.
func DecodeSOH(raw []byte) ([]scrub.Detection, error) {
	if len(raw) < 8 || string(raw[:4]) != "SOH1" {
		return nil, fmt.Errorf("groundlink: bad SOH magic")
	}
	n := int(binary.BigEndian.Uint32(raw[4:8]))
	raw = raw[8:]
	const rec = 17
	if len(raw) != n*rec {
		return nil, fmt.Errorf("groundlink: SOH payload %d bytes, want %d", len(raw), n*rec)
	}
	out := make([]scrub.Detection, 0, n)
	for i := 0; i < n; i++ {
		r := raw[i*rec : (i+1)*rec]
		d := scrub.Detection{
			Device: int(r[0]),
			Frame:  int(int32(binary.BigEndian.Uint32(r[1:5]))),
			At:     time.Duration(binary.BigEndian.Uint64(r[5:13])),
		}
		if r[13] == 1 {
			d.Action = scrub.ActionFullReconfig
		}
		out = append(out, d)
	}
	return out, nil
}
