package groundlink

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"
)

// Mission telemetry wire format. Where the SOH record carries one board's
// scrub detections, the telemetry frame is the fleet-era stream: each board
// periodically packs its pending scrub/repair/mask/flash events into frames
// and downlinks them during ground-station passes. The format is
// deliberately dumb — fixed-size big-endian records behind a magic and an
// exact length — so a truncated or corrupted downlink is rejected rather
// than misparsed.

// TelemetryKind classifies one telemetry record.
type TelemetryKind uint8

const (
	// TelDetect: a readback CRC mismatch was detected on a frame.
	TelDetect TelemetryKind = iota
	// TelRepair: a corrupted frame was repaired by partial reconfiguration.
	TelRepair
	// TelFullReconfig: a device was fully reconfigured (control-logic
	// upset recovery or a blind-scrub periodic refresh).
	TelFullReconfig
	// TelMasked: configuration redundancy masked an upset in a duplicated
	// frame (no functional outage) until its repair.
	TelMasked
	// TelFlashECC: the flash golden store corrected or detected an ECC
	// event while serving a repair fetch.
	TelFlashECC
	// TelHeartbeat: per-pass liveness record carrying aggregate counters.
	TelHeartbeat

	telKindMax = TelHeartbeat
)

func (k TelemetryKind) String() string {
	switch k {
	case TelDetect:
		return "detect"
	case TelRepair:
		return "repair"
	case TelFullReconfig:
		return "full-reconfig"
	case TelMasked:
		return "masked"
	case TelFlashECC:
		return "flash-ecc"
	case TelHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TelemetryRecord is one event: 18 bytes on the wire.
type TelemetryRecord struct {
	// At is the mission time of the event.
	At time.Duration
	// Device indexes the FPGA within the board.
	Device uint8
	// Kind classifies the event.
	Kind TelemetryKind
	// Frame is the configuration frame involved, -1 when not applicable.
	Frame int32
	// Data is kind-specific: repair latency in microseconds for
	// detect/repair/masked, pending-record count for heartbeats.
	Data uint32
}

// TelemetryFrame is one downlink unit from one board.
type TelemetryFrame struct {
	Board    uint32
	Seq      uint32
	Strategy uint8
	Records  []TelemetryRecord
}

const (
	telMagic     = "TLM1"
	telHeaderLen = 4 + 4 + 4 + 1 + 4 // magic, board, seq, strategy, count
	telRecordLen = 8 + 1 + 1 + 4 + 4
	// MaxTelemetryRecords bounds one frame; larger batches are split
	// across frames so a single corrupt frame loses a bounded window.
	MaxTelemetryRecords = 512
)

// TelemetryFrameSize returns the encoded size of a frame holding n records.
func TelemetryFrameSize(n int) int { return telHeaderLen + n*telRecordLen }

// EncodeTelemetry serializes one telemetry frame.
func EncodeTelemetry(f TelemetryFrame) ([]byte, error) {
	if len(f.Records) > MaxTelemetryRecords {
		return nil, fmt.Errorf("groundlink: %d records exceed the %d-record frame bound", len(f.Records), MaxTelemetryRecords)
	}
	if f.Strategy > 0x7F {
		return nil, fmt.Errorf("groundlink: strategy id %d out of range", f.Strategy)
	}
	var buf bytes.Buffer
	buf.Grow(TelemetryFrameSize(len(f.Records)))
	buf.WriteString(telMagic)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], f.Board)
	buf.Write(u32[:])
	binary.BigEndian.PutUint32(u32[:], f.Seq)
	buf.Write(u32[:])
	buf.WriteByte(f.Strategy)
	binary.BigEndian.PutUint32(u32[:], uint32(len(f.Records)))
	buf.Write(u32[:])
	for i, r := range f.Records {
		if r.Kind > telKindMax {
			return nil, fmt.Errorf("groundlink: record %d has unknown kind %d", i, r.Kind)
		}
		var rec [telRecordLen]byte
		binary.BigEndian.PutUint64(rec[0:8], uint64(r.At))
		rec[8] = r.Device
		rec[9] = byte(r.Kind)
		binary.BigEndian.PutUint32(rec[10:14], uint32(r.Frame))
		binary.BigEndian.PutUint32(rec[14:18], r.Data)
		buf.Write(rec[:])
	}
	return buf.Bytes(), nil
}

// DecodeTelemetry parses one telemetry frame. It rejects bad magic, record
// counts beyond the frame bound, length mismatches, reserved strategy ids,
// and unknown record kinds — anything EncodeTelemetry cannot produce.
func DecodeTelemetry(raw []byte) (TelemetryFrame, error) {
	var f TelemetryFrame
	if len(raw) < telHeaderLen || string(raw[:4]) != telMagic {
		return f, fmt.Errorf("groundlink: bad telemetry magic")
	}
	f.Board = binary.BigEndian.Uint32(raw[4:8])
	f.Seq = binary.BigEndian.Uint32(raw[8:12])
	f.Strategy = raw[12]
	if f.Strategy > 0x7F {
		return f, fmt.Errorf("groundlink: reserved strategy id %d", f.Strategy)
	}
	n := int(binary.BigEndian.Uint32(raw[13:17]))
	if n > MaxTelemetryRecords {
		return f, fmt.Errorf("groundlink: record count %d exceeds frame bound %d", n, MaxTelemetryRecords)
	}
	body := raw[telHeaderLen:]
	if len(body) != n*telRecordLen {
		return f, fmt.Errorf("groundlink: telemetry body %d bytes, want %d", len(body), n*telRecordLen)
	}
	f.Records = make([]TelemetryRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := body[i*telRecordLen : (i+1)*telRecordLen]
		r := TelemetryRecord{
			At:     time.Duration(binary.BigEndian.Uint64(rec[0:8])),
			Device: rec[8],
			Kind:   TelemetryKind(rec[9]),
			Frame:  int32(binary.BigEndian.Uint32(rec[10:14])),
			Data:   binary.BigEndian.Uint32(rec[14:18]),
		}
		if r.Kind > telKindMax {
			return f, fmt.Errorf("groundlink: record %d has unknown kind %d", i, rec[9])
		}
		f.Records = append(f.Records, r)
	}
	return f, nil
}
