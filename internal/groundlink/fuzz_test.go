package groundlink

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"repro/internal/scrub"
)

// FuzzSOHRoundTrip drives the state-of-health wire format from both ends.
// The fuzz input is first read as a detection list (clamped to the wire
// format's field ranges) and must encode/decode to exactly itself; the raw
// bytes are then fed straight to the decoder, which must never panic and
// must only accept payloads whose re-encoding decodes back unchanged.
func FuzzSOHRoundTrip(f *testing.F) {
	f.Add(EncodeSOH(nil))
	f.Add(EncodeSOH([]scrub.Detection{
		{Device: 3, Frame: 1234, At: 42 * time.Millisecond, Action: scrub.ActionRepaired},
		{Device: 8, Frame: -1, At: 90 * time.Minute, Action: scrub.ActionFullReconfig},
	}))
	f.Add([]byte("SOH1"))
	f.Add([]byte("SOH1\x00\x00\x00\x02short"))
	f.Add([]byte("not a record"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Structured direction: interpret the input as detections.
		dets := detectionsFrom(raw)
		enc := EncodeSOH(dets)
		if want := 8 + 17*len(dets); len(enc) != want {
			t.Fatalf("encoded %d detections into %d bytes, want %d", len(dets), len(enc), want)
		}
		back, err := DecodeSOH(enc)
		if err != nil {
			t.Fatalf("decoding own encoding of %d detections: %v", len(dets), err)
		}
		if len(back) != len(dets) {
			t.Fatalf("round trip count %d, want %d", len(back), len(dets))
		}
		for i := range dets {
			if back[i] != dets[i] {
				t.Fatalf("detection %d round-tripped to %+v, want %+v", i, back[i], dets[i])
			}
		}

		// Raw direction: the decoder must be total (no panics) and anything
		// it accepts must re-encode into a payload it decodes identically.
		got, err := DecodeSOH(raw)
		if err != nil {
			return
		}
		re := EncodeSOH(got)
		again, err := DecodeSOH(re)
		if err != nil {
			t.Fatalf("re-encoding accepted payload failed to decode: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("normalized payload unstable:\n first %+v\nsecond %+v", got, again)
		}
	})
}

// detectionsFrom deterministically builds a detection list from fuzz bytes,
// clamped to the ranges the 17-byte record can carry: Device is one byte,
// Frame an int32, At a full 64-bit duration, Action the two known values.
func detectionsFrom(raw []byte) []scrub.Detection {
	const rec = 14 // bytes consumed per generated detection
	var out []scrub.Detection
	for len(raw) >= rec && len(out) < 64 {
		d := scrub.Detection{
			Device: int(raw[0]),
			Frame:  int(int32(binary.BigEndian.Uint32(raw[1:5]))),
			At:     time.Duration(binary.BigEndian.Uint64(raw[5:13])),
		}
		if raw[13]&1 == 1 {
			d.Action = scrub.ActionFullReconfig
		}
		out = append(out, d)
		raw = raw[rec:]
	}
	return out
}

// TestSOHRejectsTruncation pins the decoder's error cases the fuzzer
// explores: bad magic, short header, and count/payload mismatch.
func TestSOHRejectsTruncation(t *testing.T) {
	full := EncodeSOH([]scrub.Detection{{Device: 1, Frame: 7, At: time.Second}})
	for _, raw := range [][]byte{
		nil,
		[]byte("SOH"),
		[]byte("XXX1\x00\x00\x00\x00"),
		full[:len(full)-1],
		append(bytes.Clone(full), 0),
	} {
		if _, err := DecodeSOH(raw); err == nil {
			t.Errorf("DecodeSOH accepted malformed payload %q", raw)
		}
	}
}
