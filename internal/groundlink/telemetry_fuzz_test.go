package groundlink

import (
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

// FuzzTelemetryRoundTrip drives the mission telemetry wire format from both
// ends, mirroring FuzzSOHRoundTrip: the input bytes are first interpreted
// as a telemetry frame (clamped to encodable field ranges), which must
// encode/decode to exactly itself; the raw bytes are then handed to the
// decoder, which must be total (never panic) and must only accept payloads
// whose re-encoding decodes back unchanged.
func FuzzTelemetryRoundTrip(f *testing.F) {
	if enc, err := EncodeTelemetry(TelemetryFrame{Board: 3, Seq: 1, Strategy: 1}); err == nil {
		f.Add(enc)
	}
	if enc, err := EncodeTelemetry(TelemetryFrame{
		Board: 256, Seq: 9, Strategy: 3,
		Records: []TelemetryRecord{
			{At: 42 * time.Millisecond, Device: 2, Kind: TelDetect, Frame: 17, Data: 5160},
			{At: time.Hour, Device: 0, Kind: TelFullReconfig, Frame: -1},
		},
	}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte("TLM1"))
	f.Add([]byte("TLM1\x00\x00\x00\x05\x00\x00\x00\x00\x01\x00\x00\x00\x02short"))
	f.Add([]byte("not telemetry"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Structured direction.
		frame := telemetryFrom(raw)
		enc, err := EncodeTelemetry(frame)
		if err != nil {
			t.Fatalf("encoding clamped frame: %v", err)
		}
		if want := TelemetryFrameSize(len(frame.Records)); len(enc) != want {
			t.Fatalf("encoded %d records into %d bytes, want %d", len(frame.Records), len(enc), want)
		}
		back, err := DecodeTelemetry(enc)
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if back.Board != frame.Board || back.Seq != frame.Seq || back.Strategy != frame.Strategy ||
			len(back.Records) != len(frame.Records) {
			t.Fatalf("round trip header/count mismatch: got %+v want %+v", back, frame)
		}
		for i := range frame.Records {
			if back.Records[i] != frame.Records[i] {
				t.Fatalf("record %d round-tripped to %+v, want %+v", i, back.Records[i], frame.Records[i])
			}
		}

		// Raw direction.
		got, err := DecodeTelemetry(raw)
		if err != nil {
			return
		}
		re, err := EncodeTelemetry(got)
		if err != nil {
			t.Fatalf("re-encoding accepted frame failed: %v", err)
		}
		again, err := DecodeTelemetry(re)
		if err != nil {
			t.Fatalf("re-encoded accepted frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("normalized frame unstable:\n first %+v\nsecond %+v", got, again)
		}
	})
}

// telemetryFrom deterministically builds an encodable frame from fuzz
// bytes: strategy clamped to 7 bits, kinds clamped to the known set, and at
// most MaxTelemetryRecords records.
func telemetryFrom(raw []byte) TelemetryFrame {
	var f TelemetryFrame
	if len(raw) < 9 {
		return f
	}
	f.Board = binary.BigEndian.Uint32(raw[0:4])
	f.Seq = binary.BigEndian.Uint32(raw[4:8])
	f.Strategy = raw[8] & 0x7F
	raw = raw[9:]
	const rec = 18
	for len(raw) >= rec && len(f.Records) < MaxTelemetryRecords {
		f.Records = append(f.Records, TelemetryRecord{
			At:     time.Duration(binary.BigEndian.Uint64(raw[0:8])),
			Device: raw[8],
			Kind:   TelemetryKind(raw[9]) % (telKindMax + 1),
			Frame:  int32(binary.BigEndian.Uint32(raw[10:14])),
			Data:   binary.BigEndian.Uint32(raw[14:18]),
		})
		raw = raw[rec:]
	}
	return f
}
