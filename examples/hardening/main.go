// Hardening: the mitigation flow the paper's analysis feeds — run RadDRC to
// remove half-latch dependence, then apply triple-module redundancy, and
// measure how each step changes the design's vulnerability.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/halflatch"
	"repro/internal/place"
	"repro/internal/radiation"
	"repro/internal/seu"
	"repro/internal/tmr"
)

func main() {
	geom := device.Small()
	c := designs.LFSRCluster("payload-lfsr", 2, 2, 8)
	placed, err := place.Place(c, geom)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: half-latch census and RadDRC.
	census, err := halflatch.Analyze(placed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(census)
	mitigated, n, err := halflatch.RadDRC(placed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RadDRC rewrote %d hidden keepers into scrubbable configuration constants\n", n)

	// A half-latch-only beam shows what that buys.
	hlBeam := func(p *place.Placed) int {
		bd, err := board.New(p, 5)
		if err != nil {
			log.Fatal(err)
		}
		src := radiation.NewSource(2, radiation.CrossSection{HalfLatchWeight: 1}, 5)
		rep, err := radiation.RunBeam(bd, src, nil, radiation.BeamOptions{
			Observations: 150, Window: 500 * time.Millisecond,
			CyclesPerObservation: 20, ResyncCycles: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep.OutputErrors
	}
	fmt.Printf("half-latch beam: %d errors unmitigated vs %d mitigated (paper: ~100x improvement)\n",
		hlBeam(placed), hlBeam(mitigated))

	// Step 2: TMR for the configuration cross-section.
	trip, err := tmr.Triplicate(c)
	if err != nil {
		log.Fatal(err)
	}
	sens := func(circuitName string, p *place.Placed) *seu.Report {
		bd, err := board.New(p, 5)
		if err != nil {
			log.Fatal(err)
		}
		opts := seu.DefaultOptions()
		opts.Sample = 0.25
		opts.Seed = 5
		opts.ClassifyPersistence = false
		rep, err := seu.Run(bd, opts)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	tmrPlaced, err := place.Place(trip, geom)
	if err != nil {
		log.Fatal(err)
	}
	plain := sens("plain", placed)
	hard := sens("tmr", tmrPlaced)
	fmt.Printf("SEU sensitivity: plain %.2f%% -> TMR %.2f%% (per-bit; single upsets voted out)\n",
		100*plain.Sensitivity(), 100*hard.Sensitivity())
	fmt.Printf("TMR area cost: %d -> %d slices\n", placed.SlicesUsed(), tmrPlaced.SlicesUsed())
}
