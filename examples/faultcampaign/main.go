// Faultcampaign: run the paper's SEU simulator (Fig. 8) against a custom
// user design on the simulated SLAAC-1V testbed — exactly how a designer
// would evaluate a circuit intended for the space-based payload: find its
// sensitive configuration bits, measure persistence, and decide on a
// mitigation strategy.
package main

import (
	"fmt"
	"log"

	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/seu"
	"repro/internal/synth"
)

func main() {
	// A custom design: an 8-bit accumulator (feedback!) with a parity tap.
	b := netlist.NewBuilder("accumulator")
	in := b.Input("A", 8)
	acc := make([]netlist.SignalID, 8)
	for i := range acc {
		acc[i] = b.NewSignal()
	}
	inBuf := make([]netlist.SignalID, 8)
	for i := range inBuf {
		inBuf[i] = b.Buf(in[i])
	}
	sum, _ := synth.Add(b, acc, inBuf, netlist.Invalid)
	for i := range acc {
		b.BindFF(sum[i], acc[i], false)
	}
	b.Output("O", append(append([]netlist.SignalID{}, acc...), b.XorTree(acc)))
	circuit := b.MustBuild()
	fmt.Printf("custom design: %s\n", circuit.Stats())

	placed, err := place.Place(circuit, device.Tiny())
	if err != nil {
		log.Fatal(err)
	}
	// Golden (X1) and DUT (X2) run in lock-step; X0 compares every clock.
	bd, err := board.New(placed, 42)
	if err != nil {
		log.Fatal(err)
	}

	opts := seu.DefaultOptions()
	opts.Sample = 0.5 // exhaustive (Sample: 1) takes a few minutes
	opts.Seed = 42
	rep, err := seu.Run(bd, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("simulated SLAAC-1V time: %v (the paper sweeps 5.8M bits in ~20 min)\n", rep.SimulatedTime)

	// Where do the sensitive bits live? (This is the correlation table that
	// guides selective TMR.)
	fmt.Println("sensitive bits by resource class:")
	for kind, n := range rep.FailuresByKind {
		fmt.Printf("  %-10v %5d  (%d injected)\n", kind, n, rep.InjectionsByKind[kind])
	}
	persistent := 0
	for _, bit := range rep.SensitiveBits {
		if bit.Persistent {
			persistent++
		}
	}
	fmt.Printf("persistence: %d/%d sensitive bits need a reset after repair\n", persistent, len(rep.SensitiveBits))
	fmt.Println("=> feedback-heavy accumulator: pair configuration scrubbing with a reset protocol, or TMR the state.")
}
