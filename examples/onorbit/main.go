// Onorbit: fly the nine-FPGA reconfigurable radio through a simulated LEO
// mission — quiet orbits at 1.2 upsets/hour, a solar flare at 9.6/hour —
// with each board's fault manager continuously scrubbing, and report the
// availability the architecture buys.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/payload"
	"repro/internal/place"
)

func main() {
	spec, err := designs.ByName("LFSR 18")
	if err != nil {
		log.Fatal(err)
	}
	placed, err := place.Place(spec.Build(), device.Small())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := payload.New(placed, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload: %d boards x %d FPGAs flying %q\n",
		payload.BoardCount, payload.DevicesPerBoard, spec.Name)

	// A 30-day mission with a 2-day solar flare in week two.
	mission := payload.MissionOptions{
		Duration: 30 * 24 * time.Hour,
		Flares: []payload.FlareWindow{
			{Start: 8 * 24 * time.Hour, End: 10 * 24 * time.Hour},
		},
		Seed: 7,
	}
	rep, err := sys.RunMission(mission)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("  expected upsets: %.0f quiet + %.0f flare = %.0f\n",
		1.2*(mission.Duration.Hours()-48), 9.6*48, 1.2*(mission.Duration.Hours()-48)+9.6*48)
	fmt.Printf("  detection bounded by the %v scan cycle; every configuration upset\n", rep.ScanCycle)
	fmt.Println("  was repaired by partial reconfiguration without stopping the design.")

	// State-of-health records, as they would be downlinked to the ground
	// station.
	_, mgr := sys.Device(0)
	logTail := mgr.Log()
	if len(logTail) > 5 {
		logTail = logTail[len(logTail)-5:]
	}
	fmt.Println("last state-of-health records (board 0):")
	for _, d := range logTail {
		fmt.Printf("  %s\n", d)
	}
}
