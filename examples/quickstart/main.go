// Quickstart: build a design, fly it on a simulated Virtex, hit it with an
// SEU, and watch the scrubbing fault manager detect and repair it while the
// design keeps running — the core loop of the paper's on-orbit architecture.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
	"repro/internal/scrub"
)

func main() {
	// 1. Build a benchmark design and place it onto the device fabric.
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		log.Fatal(err)
	}
	geom := device.Small()
	placed, err := place.Place(spec.Build(), geom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %q: %d slices (%.1f%% of %s)\n",
		spec.Name, placed.SlicesUsed(), 100*placed.Utilization(), geom)

	// 2. Configure a device and let the design run.
	dev := fpga.New(geom)
	if err := dev.FullConfigure(placed.Bitstream()); err != nil {
		log.Fatal(err)
	}
	dev.StepN(100)
	fmt.Printf("design running: %d clocks executed\n", dev.Cycle())

	// 3. Attach the radiation-hardened fault manager (codebook from the
	//    golden bitstream, as loaded from the flight system's flash).
	port := fpga.NewPort(dev)
	golden := dev.ConfigMemory().Clone()
	mgr, err := scrub.New([]*fpga.Port{port}, []*bitstream.Memory{golden}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. A single-event upset strikes a configuration bit.
	hit := geom.LUTBitAddr(4, 6, 1, 9)
	dev.InjectBit(hit)
	fmt.Printf("SEU! configuration bit %d (frame %d) flipped while the design runs\n",
		hit, hit.Frame(geom))

	// 5. The continuous readback scan finds the bad frame by CRC and
	//    repairs it by partial reconfiguration — no interruption of service.
	det, err := mgr.ScanOnce()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range det {
		fmt.Printf("fault manager: %s\n", d)
	}
	if dev.ConfigMemory().Equal(golden) {
		fmt.Println("configuration restored to golden; design never stopped")
	}
	dev.StepN(100)
	fmt.Printf("design still running: %d clocks total, scan cycle %v\n",
		dev.Cycle(), mgr.ScanCycleTime())
}
